//! The open arbitration layer: pluggable scheduling policies.
//!
//! The paper separates *mechanisms* (interference, FCFS serialization,
//! interruption — Section III-A) from the *policy* that chooses among them
//! (Section IV-D), and explicitly leaves richer policies as future work.
//! This module is that seam: the [`Arbiter`](crate::Arbiter) is a pure
//! mechanism engine (grant/park/interrupt/resume bookkeeping and message
//! accounting) and delegates every *decision* to an [`ArbitrationPolicy`]:
//!
//! * a newcomer arrives while others hold the file system —
//!   [`ArbitrationPolicy::on_request`] returns a [`RequestDecision`];
//! * an accessor reaches a coordination point —
//!   [`ArbitrationPolicy::on_yield`] returns a [`YieldDecision`];
//! * the file system frees up after a release or a yield —
//!   [`ArbitrationPolicy::select_next`] picks the next grantee;
//! * a bounded-delay budget expires —
//!   [`ArbitrationPolicy::on_delay_expired`] returns a
//!   [`TimeoutDecision`].
//!
//! Policies observe the arbiter through a read-only [`ArbiterView`]: the
//! active and parked sets, the pending interruption requests, the latest
//! [`IoInfo`] every application shared, and the simulated clock. The five
//! legacy [`Strategy`] variants are built-in policies
//! (constructed by [`builtin_policy`]) and reproduce the closed-enum
//! arbiter bit for bit — the `kernel_golden` trace hashes pin this.
//!
//! Policies are *named*: [`PolicySpec`] is the serializable
//! `name(arg)` description and [`PolicyRegistry`] turns specs into boxed
//! policies, so scenarios, sweeps, and the bench CLI can select policies
//! by string.
//!
//! ## Writing a policy
//!
//! A policy is usually well under 30 lines. This one serializes accessors
//! but lets *tiny* applications (≤ 64 processes) overlap freely:
//!
//! ```
//! use calciom::arbitration::{
//!     ArbitrationPolicy, ArbiterView, PolicySpec, RequestDecision,
//! };
//! use calciom::{Arbiter, Scenario, AccessPattern, AppConfig, AppId, PfsConfig};
//!
//! #[derive(Debug, Clone)]
//! struct SmallJobsOverlap;
//!
//! impl ArbitrationPolicy for SmallJobsOverlap {
//!     fn spec(&self) -> PolicySpec {
//!         PolicySpec::new("small-jobs-overlap")
//!     }
//!     fn on_request(&mut self, app: AppId, view: &ArbiterView<'_>) -> RequestDecision {
//!         match view.info_for(app) {
//!             Some(info) if info.procs <= 64 => RequestDecision::Admit,
//!             _ => RequestDecision::Queue,
//!         }
//!     }
//!     fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
//!         Box::new(self.clone())
//!     }
//! }
//!
//! // Drive it through the raw mechanism engine…
//! let mut arb = Arbiter::with_policy(Box::new(SmallJobsOverlap));
//! assert_eq!(arb.policy_label(), "small-jobs-overlap");
//! ```
//!
//! To make a policy usable *by name* from scenarios and the CLI, register
//! it in a [`PolicyRegistry`] and attach its [`PolicySpec`] to the
//! scenario with
//! [`ScenarioBuilder::arbitration`](crate::ScenarioBuilder::arbitration).

use crate::info::IoInfo;
use crate::metrics::EfficiencyMetric;
use crate::policy::{DynDecision, DynamicPolicy};
use crate::strategy::Strategy;
use pfs::AppId;
use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Why a parked application is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParkReason {
    /// Waiting for its first grant of the current phase.
    Waiting,
    /// Was accessing, yielded after an interruption request.
    Interrupted,
}

/// The engine's parked queue: arrival order plus `O(log n)` membership,
/// removal, and earliest-by-reason lookup, so no mechanism operation
/// scans the whole queue (at machine scale it holds tens of thousands of
/// waiting applications and park/release/grant run once per phase each).
#[derive(Debug, Clone, Default)]
pub(crate) struct ParkedQueue {
    /// Arrival order: sequence number → entry.
    order: BTreeMap<u64, (AppId, ParkReason)>,
    /// Per-reason arrival order (`[Waiting, Interrupted]`).
    by_reason: [BTreeSet<(u64, AppId)>; 2],
    /// Membership: application → its live entry.
    index: BTreeMap<AppId, (u64, ParkReason)>,
    /// Next arrival sequence number (never reused).
    next_seq: u64,
}

impl ParkedQueue {
    fn slot(reason: ParkReason) -> usize {
        match reason {
            ParkReason::Waiting => 0,
            ParkReason::Interrupted => 1,
        }
    }

    /// Appends an application, keeping the earliest entry on duplicates.
    /// Returns whether it was actually inserted.
    pub(crate) fn push_back(&mut self, app: AppId, reason: ParkReason) -> bool {
        if self.index.contains_key(&app) {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.order.insert(seq, (app, reason));
        self.by_reason[Self::slot(reason)].insert((seq, app));
        self.index.insert(app, (seq, reason));
        true
    }

    /// Drops an application's entry; returns whether it was present.
    pub(crate) fn remove(&mut self, app: AppId) -> bool {
        let Some((seq, reason)) = self.index.remove(&app) else {
            return false;
        };
        self.order.remove(&seq);
        self.by_reason[Self::slot(reason)].remove(&(seq, app));
        true
    }

    pub(crate) fn contains(&self, app: AppId) -> bool {
        self.index.contains_key(&app)
    }

    pub(crate) fn len(&self) -> usize {
        self.order.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Entries in arrival order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (AppId, ParkReason)> + '_ {
        self.order.values().copied()
    }

    /// The earliest-parked application, if any.
    pub(crate) fn first(&self) -> Option<AppId> {
        self.order.values().next().map(|(a, _)| *a)
    }

    /// The earliest-parked application with the given reason, if any.
    pub(crate) fn first_with(&self, reason: ParkReason) -> Option<AppId> {
        self.by_reason[Self::slot(reason)].first().map(|(_, a)| *a)
    }

    /// Number of parked applications with the given reason — `O(1)`, no
    /// queue scan.
    pub(crate) fn len_with(&self, reason: ParkReason) -> usize {
        self.by_reason[Self::slot(reason)].len()
    }
}

/// Read-only snapshot of the arbiter's state, handed to every policy
/// decision point.
///
/// The view borrows the arbiter's own structures — building it costs
/// nothing — and exposes exactly what a distributed implementation could
/// know: who holds the file system, who is queued (and why), which
/// accessors have been asked to yield, the latest [`IoInfo`] each
/// application shared, and the simulated clock.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterView<'a> {
    pub(crate) active: &'a BTreeSet<AppId>,
    pub(crate) parked: &'a ParkedQueue,
    pub(crate) interrupt_requested: &'a BTreeSet<AppId>,
    pub(crate) info: &'a BTreeMap<AppId, IoInfo>,
    pub(crate) now: SimTime,
    pub(crate) messages: u64,
}

impl ArbiterView<'_> {
    /// Applications currently granted access, in id order.
    pub fn active(&self) -> impl Iterator<Item = AppId> + '_ {
        self.active.iter().copied()
    }

    /// Number of applications currently granted access.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// Parked applications with the reason they parked, in queue
    /// (arrival) order.
    pub fn parked(&self) -> impl Iterator<Item = (AppId, ParkReason)> + '_ {
        self.parked.iter()
    }

    /// Number of parked applications.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// The earliest-parked application with the given reason, if any —
    /// `O(log n)`, no queue scan.
    pub fn parked_first_with(&self, reason: ParkReason) -> Option<AppId> {
        self.parked.first_with(reason)
    }

    /// Number of parked applications with the given reason — the queue
    /// depth a load-aware policy (or the hierarchical root arbiter)
    /// reads on every decision, so it avoids the [`parked`](Self::parked)
    /// scan.
    pub fn parked_len_with(&self, reason: ParkReason) -> usize {
        self.parked.len_with(reason)
    }

    /// Whether the given accessor has a pending interruption request (it
    /// will be asked to yield at its next coordination point under the
    /// default [`ArbitrationPolicy::on_yield`]).
    pub fn interrupt_requested(&self, app: AppId) -> bool {
        self.interrupt_requested.contains(&app)
    }

    /// Latest information the application shared, if any.
    pub fn info_for(&self, app: AppId) -> Option<&IoInfo> {
        self.info.get(&app)
    }

    /// The shared information of every *active* application that provided
    /// any, in id order — the "current accessors" input of the paper's
    /// dynamic decision.
    pub fn accessor_infos(&self) -> Vec<IoInfo> {
        self.active
            .iter()
            .filter_map(|a| self.info.get(a).cloned())
            .collect()
    }

    /// The simulated clock at the moment of the decision.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Coordination messages exchanged so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }
}

/// What to do with an application that asked for access while others hold
/// (or wait for) the file system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestDecision {
    /// Let it in immediately, overlapping the current accessors
    /// (interference).
    Admit,
    /// Park it until a release or yield hands it the slot (FCFS-style
    /// serialization).
    Queue,
    /// Park it, but promise a grant after at most this many seconds (the
    /// bounded-delay trade-off; the driver arms a timeout that ends in
    /// [`ArbitrationPolicy::on_delay_expired`]).
    QueueWithTimeout {
        /// Maximum seconds the newcomer is willing to wait.
        max_wait_secs: f64,
    },
    /// Park it and ask every current accessor to yield at its next
    /// coordination point (interruption-based serialization).
    QueueAndInterrupt,
}

/// What an accessor should do at a coordination point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YieldDecision {
    /// Keep going.
    Continue,
    /// Pause here; the application is parked as
    /// [`ParkReason::Interrupted`] and resumed by a later grant.
    Yield,
}

/// Why the arbiter is about to hand the freed slot to a parked
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantTrigger {
    /// An accessor yielded at a coordination point.
    Yielded,
    /// An accessor released at the end of its phase.
    Released,
}

/// What to do when a bounded-delay budget expires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutDecision {
    /// Force the grant through: the application proceeds, overlapping the
    /// current accessors.
    ForceGrant,
    /// Keep the application queued after all (the promise is withdrawn;
    /// it will be granted by a later release/yield).
    KeepWaiting,
}

/// A cross-application I/O arbitration policy: the pluggable brain of the
/// [`Arbiter`](crate::Arbiter).
///
/// The mechanism engine calls the policy at every decision point with a
/// read-only [`ArbiterView`]; the policy answers with a typed decision and
/// the engine performs the bookkeeping (parking, interrupt flags, grants,
/// message accounting). Policies may keep internal state (`&mut self`);
/// [`ArbitrationPolicy::on_grant`] notifies them of every grant so
/// stateful schedules (quanta, histories) stay in sync.
///
/// See the [module docs](self) for a complete ≤ 30-line example.
pub trait ArbitrationPolicy: std::fmt::Debug + Send {
    /// The serializable name-plus-parameters description of this policy.
    /// [`ArbitrationPolicy::label`] (derived from it) is used in figure
    /// series, trace headers and experiment output.
    fn spec(&self) -> PolicySpec;

    /// Display label carrying the parameters, e.g. `delay(30s)` or
    /// `priority(w=cores)`. Defaults to the spec's text form.
    fn label(&self) -> String {
        self.spec().to_text()
    }

    /// Whether the policy requires cross-application coordination (only
    /// plain interference does not).
    fn needs_coordination(&self) -> bool {
        true
    }

    /// A newcomer asked for access while the file system is not free.
    /// (When nobody is active *and* nobody is parked the engine grants
    /// immediately without consulting the policy.)
    fn on_request(&mut self, app: AppId, view: &ArbiterView<'_>) -> RequestDecision;

    /// An active application reached a coordination point. The default
    /// honours the pending interruption requests raised by
    /// [`RequestDecision::QueueAndInterrupt`]; time-sliced policies
    /// override this to preempt on their own schedule.
    fn on_yield(&mut self, app: AppId, view: &ArbiterView<'_>) -> YieldDecision {
        if view.interrupt_requested(app) {
            YieldDecision::Yield
        } else {
            YieldDecision::Continue
        }
    }

    /// The file system is free and parked applications wait: pick who goes
    /// next. Returning `None` (or an application that is not parked)
    /// falls back to the default order. The default implements the
    /// paper's rule: a yield hands the slot to the earliest *waiting*
    /// newcomer, a release resumes the earliest *interrupted* application
    /// first.
    fn select_next(&mut self, trigger: GrantTrigger, view: &ArbiterView<'_>) -> Option<AppId> {
        let prefer = match trigger {
            GrantTrigger::Yielded => ParkReason::Waiting,
            GrantTrigger::Released => ParkReason::Interrupted,
        };
        view.parked_first_with(prefer)
            .or_else(|| view.parked().next().map(|(a, _)| a))
    }

    /// A [`RequestDecision::QueueWithTimeout`] budget expired while the
    /// application is still parked. The default forces the grant through.
    fn on_delay_expired(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> TimeoutDecision {
        TimeoutDecision::ForceGrant
    }

    /// Notification: `app` was just granted access (immediately, from the
    /// queue, or by force). Stateful policies update their bookkeeping
    /// here; the default does nothing.
    fn on_grant(&mut self, _app: AppId, _view: &ArbiterView<'_>) {}

    /// Clones the policy behind the trait object (the `Arbiter` is
    /// `Clone`). Implement as `Box::new(self.clone())`.
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy>;
}

impl Clone for Box<dyn ArbitrationPolicy> {
    fn clone(&self) -> Self {
        self.clone_policy()
    }
}

/// A problem naming, parsing, or instantiating an arbitration policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// The spec text was not `name` or `name(arg)`.
    Malformed(String),
    /// No registered policy has this name.
    Unknown(String),
    /// The argument was rejected by the named policy's codec.
    InvalidArg {
        /// The policy name.
        name: String,
        /// The rejected argument text.
        arg: String,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::Malformed(text) => {
                write!(
                    f,
                    "malformed policy spec '{text}' (expected name or name(arg))"
                )
            }
            PolicyError::Unknown(name) => write!(f, "unknown policy '{name}'"),
            PolicyError::InvalidArg { name, arg } => {
                write!(f, "invalid argument '{arg}' for policy '{name}'")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Serializable `name(arg)` description of a policy — the unit the
/// [`PolicyRegistry`] instantiates, the [`Scenario`](crate::Scenario)
/// codec stores, and the bench CLI's `--policy` flag parses.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Registered policy name (e.g. `fcfs`, `rr`).
    pub name: String,
    /// Optional argument text (the part inside parentheses), interpreted
    /// by the policy's own codec.
    pub arg: Option<String>,
}

impl PolicySpec {
    /// A spec with no argument.
    pub fn new(name: impl Into<String>) -> Self {
        PolicySpec {
            name: name.into(),
            arg: None,
        }
    }

    /// A spec with an argument.
    pub fn with_arg(name: impl Into<String>, arg: impl Into<String>) -> Self {
        PolicySpec {
            name: name.into(),
            arg: Some(arg.into()),
        }
    }

    /// The canonical text form: `name` or `name(arg)`.
    pub fn to_text(&self) -> String {
        match &self.arg {
            None => self.name.clone(),
            Some(arg) => format!("{}({arg})", self.name),
        }
    }

    /// Parses the form produced by [`PolicySpec::to_text`]. The name may
    /// contain letters, digits and dashes; the argument is everything
    /// between the outer parentheses (no nesting).
    pub fn from_text(text: &str) -> Result<PolicySpec, PolicyError> {
        let text = text.trim();
        let malformed = || PolicyError::Malformed(text.to_string());
        let valid_name =
            |n: &str| !n.is_empty() && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '-');
        match text.split_once('(') {
            None => {
                if !valid_name(text) {
                    return Err(malformed());
                }
                Ok(PolicySpec::new(text))
            }
            Some((name, rest)) => {
                let arg = rest.strip_suffix(')').ok_or_else(malformed)?;
                if !valid_name(name) || arg.contains('(') || arg.contains(')') {
                    return Err(malformed());
                }
                Ok(PolicySpec::with_arg(name, arg))
            }
        }
    }
}

impl std::fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Formats a number of seconds as the `<secs>s` argument used by the
/// time-parameterized policy codecs (shortest float representation:
/// `delay(30s)`, `rr(0.5s)`).
pub fn secs_to_arg(secs: f64) -> String {
    format!("{secs}s")
}

/// Parses a `<secs>s` (or bare `<secs>`) argument.
pub fn arg_to_secs(arg: &str) -> Option<f64> {
    let digits = arg.strip_suffix('s').unwrap_or(arg);
    let secs: f64 = digits.trim().parse().ok()?;
    (secs.is_finite() && secs >= 0.0).then_some(secs)
}

// ---------------------------------------------------------------------------
// Built-in policies: the five legacy strategies.
// ---------------------------------------------------------------------------

/// No coordination: every newcomer is admitted immediately
/// ([`Strategy::Interfere`]).
#[derive(Debug, Clone, Default)]
pub struct Interfere;

impl ArbitrationPolicy for Interfere {
    fn spec(&self) -> PolicySpec {
        PolicySpec::new("interfering")
    }
    fn needs_coordination(&self) -> bool {
        false
    }
    fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
        RequestDecision::Admit
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// First-come-first-served serialization ([`Strategy::FcfsSerialize`]).
#[derive(Debug, Clone, Default)]
pub struct FcfsSerialize;

impl ArbitrationPolicy for FcfsSerialize {
    fn spec(&self) -> PolicySpec {
        PolicySpec::new("fcfs")
    }
    fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
        RequestDecision::Queue
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// Interruption-based serialization: every newcomer preempts the current
/// accessors at their next coordination point ([`Strategy::Interrupt`]).
#[derive(Debug, Clone, Default)]
pub struct Interrupt;

impl ArbitrationPolicy for Interrupt {
    fn spec(&self) -> PolicySpec {
        PolicySpec::new("interrupt")
    }
    fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
        RequestDecision::QueueAndInterrupt
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// Bounded delay: wait for the accessor, but at most `max_wait_secs`,
/// then overlap ([`Strategy::Delay`], Fig. 12).
#[derive(Debug, Clone)]
pub struct BoundedDelay {
    /// Maximum seconds a newcomer waits before overlapping.
    pub max_wait_secs: f64,
}

impl ArbitrationPolicy for BoundedDelay {
    fn spec(&self) -> PolicySpec {
        PolicySpec::with_arg("delay", secs_to_arg(self.max_wait_secs))
    }
    fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
        RequestDecision::QueueWithTimeout {
            max_wait_secs: self.max_wait_secs,
        }
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// The paper's dynamic choice: minimize the extra cost each option adds
/// to a machine-wide efficiency metric, computed from the exchanged
/// [`IoInfo`] ([`Strategy::Dynamic`], wrapping [`DynamicPolicy`]).
#[derive(Debug, Clone)]
pub struct DynamicMinCost {
    /// The cost model (metric + interference-estimate configuration).
    pub policy: DynamicPolicy,
}

impl ArbitrationPolicy for DynamicMinCost {
    fn spec(&self) -> PolicySpec {
        // The canonical configuration (CPU·seconds, no interference
        // estimate) keeps the historical argument-less name so legacy
        // labels and series stay stable.
        if self.policy == DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted) {
            PolicySpec::new("calciom-dynamic")
        } else {
            PolicySpec::with_arg("calciom-dynamic", self.policy.metric.label())
        }
    }
    fn on_request(&mut self, app: AppId, view: &ArbiterView<'_>) -> RequestDecision {
        let Some(requester) = view.info_for(app).cloned() else {
            // Without information, fall back to FCFS — the conservative
            // choice.
            return RequestDecision::Queue;
        };
        match self.policy.decide(&requester, &view.accessor_infos()) {
            DynDecision::Interfere => RequestDecision::Admit,
            DynDecision::WaitFcfs => RequestDecision::Queue,
            DynDecision::InterruptAccessors => RequestDecision::QueueAndInterrupt,
        }
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// New policies the closed enum could not express.
// ---------------------------------------------------------------------------

/// Weighted priority: an application's priority is its core count. A
/// newcomer that outweighs every current accessor preempts them; the
/// freed slot always goes to the heaviest parked application (earliest
/// arrival breaks ties). Inexpressible with the closed enum: the
/// decision is a function of the exchanged core counts, not of a fixed
/// serialization rule.
#[derive(Debug, Clone, Default)]
pub struct WeightedPriority;

impl WeightedPriority {
    fn procs(view: &ArbiterView<'_>, app: AppId) -> u32 {
        view.info_for(app).map(|i| i.procs).unwrap_or(0)
    }
}

impl ArbitrationPolicy for WeightedPriority {
    fn spec(&self) -> PolicySpec {
        PolicySpec::with_arg("priority", "w=cores")
    }
    fn on_request(&mut self, app: AppId, view: &ArbiterView<'_>) -> RequestDecision {
        let mine = Self::procs(view, app);
        let heaviest_accessor = view.active().map(|a| Self::procs(view, a)).max();
        match heaviest_accessor {
            Some(theirs) if mine > theirs => RequestDecision::QueueAndInterrupt,
            _ => RequestDecision::Queue,
        }
    }
    fn select_next(&mut self, _trigger: GrantTrigger, view: &ArbiterView<'_>) -> Option<AppId> {
        // Heaviest parked application; the queue position (arrival order)
        // breaks ties — `Reverse(idx)` makes the earliest arrival win
        // among equal weights under `max_by_key`'s last-wins tie rule.
        view.parked()
            .enumerate()
            .max_by_key(|&(idx, (a, _))| (Self::procs(view, a), std::cmp::Reverse(idx)))
            .map(|(_, (a, _))| a)
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// Shortest-remaining-phase-first: clairvoyant from the exchanged
/// [`IoInfo`] stand-alone estimates. A newcomer whose whole phase is
/// shorter than every accessor's *remaining* work preempts; the freed
/// slot goes to the parked application with the least remaining work.
/// Inexpressible with the closed enum: it orders the queue by a live,
/// exchanged quantity.
#[derive(Debug, Clone, Default)]
pub struct ShortestRemainingFirst;

impl ShortestRemainingFirst {
    fn remaining(view: &ArbiterView<'_>, app: AppId) -> f64 {
        view.info_for(app)
            .map(|i| i.est_alone_remaining_secs)
            .unwrap_or(f64::INFINITY)
    }
}

impl ArbitrationPolicy for ShortestRemainingFirst {
    fn spec(&self) -> PolicySpec {
        PolicySpec::new("srpf")
    }
    fn on_request(&mut self, app: AppId, view: &ArbiterView<'_>) -> RequestDecision {
        let mine = view
            .info_for(app)
            .map(|i| i.est_alone_total_secs)
            .unwrap_or(f64::INFINITY);
        let preempts = view
            .active()
            .all(|a| mine < Self::remaining(view, a) && mine.is_finite());
        if preempts {
            RequestDecision::QueueAndInterrupt
        } else {
            RequestDecision::Queue
        }
    }
    fn select_next(&mut self, _trigger: GrantTrigger, view: &ArbiterView<'_>) -> Option<AppId> {
        view.parked().map(|(a, _)| a).min_by(|&x, &y| {
            Self::remaining(view, x)
                .total_cmp(&Self::remaining(view, y))
                .then(x.0.cmp(&y.0))
        })
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// Round-robin quantum serialization: accessors run one at a time, but an
/// accessor that has held the file system longer than the quantum yields
/// at its next coordination point whenever somebody is queued; the queue
/// is served strictly in FIFO order, and a preempted application goes to
/// the back. Inexpressible with the closed enum: yields are driven by
/// the clock, not by interruption requests.
#[derive(Debug, Clone)]
pub struct RoundRobinQuantum {
    /// The time slice, in seconds.
    pub quantum_secs: f64,
    granted_at: BTreeMap<AppId, SimTime>,
}

impl RoundRobinQuantum {
    /// A round-robin policy with the given time slice.
    pub fn new(quantum_secs: f64) -> Self {
        RoundRobinQuantum {
            quantum_secs,
            granted_at: BTreeMap::new(),
        }
    }
}

impl ArbitrationPolicy for RoundRobinQuantum {
    fn spec(&self) -> PolicySpec {
        PolicySpec::with_arg("rr", secs_to_arg(self.quantum_secs))
    }
    fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
        RequestDecision::Queue
    }
    fn on_yield(&mut self, app: AppId, view: &ArbiterView<'_>) -> YieldDecision {
        if view.parked_len() == 0 {
            return YieldDecision::Continue;
        }
        let held = match self.granted_at.get(&app) {
            Some(&since) => view.now().saturating_since(since).as_secs(),
            None => 0.0,
        };
        if held >= self.quantum_secs {
            YieldDecision::Yield
        } else {
            YieldDecision::Continue
        }
    }
    fn select_next(&mut self, _trigger: GrantTrigger, view: &ArbiterView<'_>) -> Option<AppId> {
        // Strict FIFO: preempted applications re-queue at the back.
        view.parked().next().map(|(a, _)| a)
    }
    fn on_grant(&mut self, app: AppId, view: &ArbiterView<'_>) {
        self.granted_at.insert(app, view.now());
    }
    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

/// Builds the built-in policy corresponding to a legacy [`Strategy`] —
/// the compatibility shim [`Arbiter::new`](crate::Arbiter::new) and the
/// scenario runner use. `dynamic` configures [`DynamicMinCost`] and is
/// ignored by the other strategies.
pub fn builtin_policy(strategy: Strategy, dynamic: DynamicPolicy) -> Box<dyn ArbitrationPolicy> {
    match strategy {
        Strategy::Interfere => Box::new(Interfere),
        Strategy::FcfsSerialize => Box::new(FcfsSerialize),
        Strategy::Interrupt => Box::new(Interrupt),
        Strategy::Delay { max_wait_secs } => Box::new(BoundedDelay { max_wait_secs }),
        Strategy::Dynamic => Box::new(DynamicMinCost { policy: dynamic }),
    }
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

type PolicyBuilder =
    fn(&PolicySpec, &DynamicPolicy) -> Result<Box<dyn ArbitrationPolicy>, PolicyError>;

struct RegistryEntry {
    name: &'static str,
    description: &'static str,
    build: PolicyBuilder,
}

/// Name-indexed factory of [`ArbitrationPolicy`] instances, in the same
/// spirit as the experiment registry: scenarios, sweeps and the bench CLI
/// resolve policies by [`PolicySpec`] through one of these.
///
/// [`PolicyRegistry::standard`] knows the five built-in (legacy) policies
/// and the three extended ones; [`PolicyRegistry::register`] adds custom
/// entries.
pub struct PolicyRegistry {
    entries: Vec<RegistryEntry>,
}

fn no_arg(spec: &PolicySpec) -> Result<(), PolicyError> {
    match &spec.arg {
        None => Ok(()),
        Some(arg) => Err(PolicyError::InvalidArg {
            name: spec.name.clone(),
            arg: arg.clone(),
        }),
    }
}

fn secs_arg(spec: &PolicySpec, default: f64) -> Result<f64, PolicyError> {
    match &spec.arg {
        None => Ok(default),
        Some(arg) => arg_to_secs(arg).ok_or_else(|| PolicyError::InvalidArg {
            name: spec.name.clone(),
            arg: arg.clone(),
        }),
    }
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PolicyRegistry {
            entries: Vec::new(),
        }
    }

    /// The standard registry: the five built-in policies under their
    /// legacy names plus the three extended ones.
    pub fn standard() -> Self {
        let mut registry = PolicyRegistry::new();
        registry.register(
            "interfering",
            "no coordination: concurrent access (the paper's baseline)",
            |spec, _| {
                no_arg(spec)?;
                Ok(Box::new(Interfere))
            },
        );
        registry.register(
            "fcfs",
            "first-come-first-served serialization",
            |spec, _| {
                no_arg(spec)?;
                Ok(Box::new(FcfsSerialize))
            },
        );
        registry.register(
            "interrupt",
            "newcomers preempt accessors at their next coordination point",
            |spec, _| {
                no_arg(spec)?;
                Ok(Box::new(Interrupt))
            },
        );
        registry.register(
            "delay",
            "bounded delay: wait at most <secs>s, then overlap (delay(30s))",
            |spec, _| {
                Ok(Box::new(BoundedDelay {
                    max_wait_secs: secs_arg(spec, 30.0)?,
                }))
            },
        );
        registry.register(
            "calciom-dynamic",
            "paper's dynamic min-cost choice; optional metric argument",
            |spec, dynamic| {
                let policy = match &spec.arg {
                    None => *dynamic,
                    Some(arg) => DynamicPolicy {
                        metric: EfficiencyMetric::from_label(arg).ok_or_else(|| {
                            PolicyError::InvalidArg {
                                name: spec.name.clone(),
                                arg: arg.clone(),
                            }
                        })?,
                        ..*dynamic
                    },
                };
                Ok(Box::new(DynamicMinCost { policy }))
            },
        );
        registry.register(
            "priority",
            "weighted priority: bigger jobs (more cores) preempt (priority(w=cores))",
            |spec, _| match spec.arg.as_deref() {
                None | Some("w=cores") => Ok(Box::new(WeightedPriority)),
                Some(arg) => Err(PolicyError::InvalidArg {
                    name: spec.name.clone(),
                    arg: arg.to_string(),
                }),
            },
        );
        registry.register(
            "srpf",
            "shortest-remaining-phase-first, clairvoyant from the exchanged IoInfo",
            |spec, _| {
                no_arg(spec)?;
                Ok(Box::new(ShortestRemainingFirst))
            },
        );
        registry.register(
            "rr",
            "round-robin quantum serialization with FIFO requeue (rr(10s))",
            |spec, _| Ok(Box::new(RoundRobinQuantum::new(secs_arg(spec, 10.0)?))),
        );
        registry
    }

    /// Registers a named policy builder. Panics on a duplicate name —
    /// names are the lookup key of the codec.
    pub fn register(
        &mut self,
        name: &'static str,
        description: &'static str,
        build: PolicyBuilder,
    ) {
        assert!(
            self.entries.iter().all(|e| e.name != name),
            "duplicate policy name '{name}'"
        );
        self.entries.push(RegistryEntry {
            name,
            description,
            build,
        });
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }

    /// One-line description of a registered policy.
    pub fn description(&self, name: &str) -> Option<&'static str> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.description)
    }

    /// Instantiates the policy a spec names. `dynamic` is the cost-model
    /// context `calciom-dynamic` inherits when the spec does not override
    /// the metric (scenarios pass their `policy` field here).
    pub fn build(
        &self,
        spec: &PolicySpec,
        dynamic: &DynamicPolicy,
    ) -> Result<Box<dyn ArbitrationPolicy>, PolicyError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.name == spec.name)
            .ok_or_else(|| PolicyError::Unknown(spec.name.clone()))?;
        (entry.build)(spec, dynamic)
    }

    /// Parses a spec string and instantiates it in one step — the entry
    /// point of the bench CLI's `--policy` flag.
    pub fn build_text(
        &self,
        text: &str,
        dynamic: &DynamicPolicy,
    ) -> Result<Box<dyn ArbitrationPolicy>, PolicyError> {
        self.build(&PolicySpec::from_text(text)?, dynamic)
    }

    /// Canonical example specs, one per registered policy, with the
    /// time-parameterized ones at representative values. Round-tripping
    /// these through [`PolicyRegistry::build`] + [`ArbitrationPolicy::spec`]
    /// is the codec property the test suite pins.
    pub fn canonical_specs(&self) -> Vec<PolicySpec> {
        self.entries
            .iter()
            .map(|e| match e.name {
                "delay" => PolicySpec::with_arg("delay", "30s"),
                "rr" => PolicySpec::with_arg("rr", "10s"),
                "priority" => PolicySpec::with_arg("priority", "w=cores"),
                name => PolicySpec::new(name),
            })
            .collect()
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        PolicyRegistry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_text_round_trips() {
        for spec in [
            PolicySpec::new("fcfs"),
            PolicySpec::with_arg("delay", "30s"),
            PolicySpec::with_arg("priority", "w=cores"),
            PolicySpec::with_arg("rr", "0.5s"),
        ] {
            assert_eq!(PolicySpec::from_text(&spec.to_text()).unwrap(), spec);
        }
    }

    #[test]
    fn parked_queue_depths_are_tracked_per_reason() {
        let mut parked = ParkedQueue::default();
        parked.push_back(AppId(0), ParkReason::Waiting);
        parked.push_back(AppId(1), ParkReason::Interrupted);
        parked.push_back(AppId(2), ParkReason::Waiting);
        let active = BTreeSet::new();
        let interrupts = BTreeSet::new();
        let info = BTreeMap::new();
        let view = ArbiterView {
            active: &active,
            parked: &parked,
            interrupt_requested: &interrupts,
            info: &info,
            now: SimTime::ZERO,
            messages: 0,
        };
        assert_eq!(view.parked_len(), 3);
        assert_eq!(view.parked_len_with(ParkReason::Waiting), 2);
        assert_eq!(view.parked_len_with(ParkReason::Interrupted), 1);
        parked.remove(AppId(1));
        assert_eq!(parked.len_with(ParkReason::Interrupted), 0);
        assert_eq!(parked.len_with(ParkReason::Waiting), 2);
    }

    #[test]
    fn spec_parse_rejects_malformed_text() {
        for bad in ["", "delay(30s", "delay)30s(", "a b", "x((y))", "n(a)b"] {
            assert!(
                matches!(PolicySpec::from_text(bad), Err(PolicyError::Malformed(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn secs_codec_round_trips_shortest_repr() {
        for secs in [0.0, 0.125, 2.0, 30.0, 1e6] {
            assert_eq!(arg_to_secs(&secs_to_arg(secs)), Some(secs));
        }
        assert_eq!(arg_to_secs("5"), Some(5.0));
        assert_eq!(arg_to_secs("-1s"), None);
        assert_eq!(arg_to_secs("NaNs"), None);
        assert_eq!(arg_to_secs("soon"), None);
    }

    #[test]
    fn registry_builds_every_canonical_spec() {
        let registry = PolicyRegistry::standard();
        assert_eq!(registry.names().len(), 8);
        let dynamic = DynamicPolicy::default();
        for spec in registry.canonical_specs() {
            let policy = registry.build(&spec, &dynamic).unwrap_or_else(|e| {
                panic!("canonical spec {spec} must build: {e}");
            });
            assert_eq!(policy.spec(), spec, "spec must round-trip through build");
            assert_eq!(policy.label(), spec.to_text());
            assert!(
                registry.description(&spec.name).is_some(),
                "{spec}: missing description"
            );
        }
    }

    #[test]
    fn registry_rejects_unknown_names_and_bad_args() {
        let registry = PolicyRegistry::standard();
        let dynamic = DynamicPolicy::default();
        assert_eq!(
            registry
                .build(&PolicySpec::new("warp"), &dynamic)
                .unwrap_err(),
            PolicyError::Unknown("warp".into())
        );
        for (name, arg) in [
            ("fcfs", "x"),
            ("delay", "soon"),
            ("rr", "fast"),
            ("priority", "w=bytes"),
            ("calciom-dynamic", "warp-metric"),
        ] {
            assert!(
                matches!(
                    registry.build(&PolicySpec::with_arg(name, arg), &dynamic),
                    Err(PolicyError::InvalidArg { .. })
                ),
                "{name}({arg}) must be rejected"
            );
        }
    }

    #[test]
    #[should_panic(expected = "duplicate policy name")]
    fn duplicate_registration_panics() {
        let mut registry = PolicyRegistry::standard();
        registry.register("fcfs", "again", |spec, _| {
            no_arg(spec)?;
            Ok(Box::new(FcfsSerialize))
        });
    }

    #[test]
    fn builtin_policies_match_their_strategies() {
        let dynamic = DynamicPolicy::default();
        for (strategy, name) in [
            (Strategy::Interfere, "interfering"),
            (Strategy::FcfsSerialize, "fcfs"),
            (Strategy::Interrupt, "interrupt"),
            (Strategy::Delay { max_wait_secs: 2.0 }, "delay"),
            (Strategy::Dynamic, "calciom-dynamic"),
        ] {
            let policy = builtin_policy(strategy, dynamic);
            assert_eq!(policy.spec().name, name);
            assert_eq!(policy.needs_coordination(), strategy.needs_coordination());
            assert_eq!(policy.label(), strategy.label());
        }
        assert_eq!(
            builtin_policy(Strategy::Delay { max_wait_secs: 2.0 }, dynamic).label(),
            "delay(2s)"
        );
    }

    #[test]
    fn dynamic_min_cost_spec_reflects_the_metric() {
        let canonical = DynamicMinCost {
            policy: DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        };
        assert_eq!(canonical.spec(), PolicySpec::new("calciom-dynamic"));
        let total = DynamicMinCost {
            policy: DynamicPolicy::new(EfficiencyMetric::TotalIoTime),
        };
        assert_eq!(
            total.spec(),
            PolicySpec::with_arg("calciom-dynamic", EfficiencyMetric::TotalIoTime.label())
        );
    }
}
