//! Replayable, serializable execution traces.
//!
//! A [`Trace`] is the complete record of one session's observable event
//! stream (see [`SimEvent`]) plus the small amount of static metadata the
//! report needs (strategy, per-application name/procs/alone-estimate). It
//! is produced by a [`TraceRecorder`] attached to
//! [`Session::execute_with`](crate::Session::execute_with) and round-trips
//! through a plain-text codec in the same `key = value` style as the
//! scenario codec ([`Trace::to_text`] /
//! [`Trace::from_text`]).
//!
//! Because the [`SessionReport`] is itself a fold of
//! the event stream (see [`ReportBuilder`]),
//! **replaying a trace reproduces the originating report bit for bit**:
//!
//! ```
//! use calciom::{Scenario, Session, Trace, TraceRecorder, Strategy};
//! use calciom::{AccessPattern, AppConfig, AppId, PfsConfig};
//!
//! let scenario = Scenario::builder(PfsConfig::grid5000_rennes())
//!     .app(AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0e6)))
//!     .app(AppConfig::new(AppId(1), "B", 336, AccessPattern::contiguous(16.0e6))
//!         .starting_at_secs(2.0))
//!     .strategy(Strategy::FcfsSerialize)
//!     .build()
//!     .unwrap();
//!
//! let mut recorder = TraceRecorder::for_scenario(&scenario);
//! let report = Session::new(&scenario).unwrap().execute_with(&mut recorder).unwrap();
//!
//! let trace = recorder.into_trace();
//! let decoded = Trace::from_text(&trace.to_text()).unwrap();
//! assert_eq!(decoded.replay_report(), report);
//! ```

use crate::arbitration::PolicySpec;
use crate::error::TraceParseError;
use crate::observe::{AppSeed, GrantKind, ReportBuilder, SimEvent, SimObserver};
use crate::scenario::{self, invalid, parse_num, reject_leftovers, take, Scenario};
use crate::session::SessionReport;
use crate::strategy::Strategy;
use pfs::{AppId, TransferId};
use serde::{Deserialize, Serialize};
use simcore::observe::{EventLog, Stamped};
use simcore::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Header line of the textual trace encoding.
const HEADER: &str = "calciom-trace v1";

/// The recorded event stream of one session, with the metadata needed to
/// replay it into a [`SessionReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Strategy that was in force.
    pub strategy: Strategy,
    /// The named arbitration policy in force, when the session ran one
    /// ([`Scenario::arbitration`]); `None` for legacy strategy runs —
    /// whose text encoding is then byte-identical to the
    /// pre-policy-layer format (the `kernel_golden` hashes pin this).
    pub policy: Option<PolicySpec>,
    /// Per-application metadata, in scenario order.
    pub apps: Vec<AppSeed>,
    /// The events, in emission order.
    pub events: Vec<Stamped<SimEvent>>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Streams the recorded events through any observer, in emission
    /// order. This is the replay primitive: feed a fresh
    /// [`ReportBuilder`] to re-derive the report, or a
    /// [`TimelineAggregator`](crate::TimelineAggregator) to build Gantt
    /// and bandwidth views after the fact.
    pub fn replay_into<O: SimObserver>(&self, observer: &mut O) {
        for e in &self.events {
            observer.on_event(e.time, &e.event);
        }
    }

    /// Re-derives the [`SessionReport`] of the recorded session. The
    /// simulation's own report is folded from the same stream, so this
    /// reproduces it bit for bit.
    pub fn replay_report(&self) -> SessionReport {
        let label = match &self.policy {
            Some(spec) => spec.to_text(),
            None => self.strategy.label(),
        };
        let mut builder = ReportBuilder::seeded(self.strategy, label, self.apps.clone());
        self.replay_into(&mut builder);
        builder.finish()
    }

    /// Serializes the trace to the plain-text encoding (same conventions
    /// as the [`Scenario`] codec: a header line,
    /// `[section]`s of `key = value` pairs, `#` comments; events are one
    /// `<tick> <kind> <args…>` record per line inside `[events]`).
    ///
    /// Floating-point fields use Rust's shortest round-trip
    /// representation, so [`Trace::from_text`] reconstructs exact values.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        let _ = writeln!(
            out,
            "strategy = {}",
            scenario::strategy_to_text(self.strategy)
        );
        // Optional key: absent for legacy strategy runs, keeping their
        // encoding byte-identical to the pre-policy-layer format.
        if let Some(spec) = &self.policy {
            let _ = writeln!(out, "policy = {}", spec.to_text());
        }
        for app in &self.apps {
            out.push_str("\n[app]\n");
            let _ = writeln!(out, "id = {}", app.app.0);
            let _ = writeln!(out, "name = {}", scenario::quote(&app.name));
            let _ = writeln!(out, "procs = {}", app.procs);
            let _ = writeln!(out, "alone_estimate_secs = {:?}", app.alone_estimate_secs);
        }
        out.push_str("\n[events]\n");
        for e in &self.events {
            let _ = write!(out, "{} {}", e.time.ticks(), e.event.kind());
            match e.event {
                SimEvent::PhaseStarted { app, phase } => {
                    let _ = write!(out, " {} {}", app.0, phase);
                }
                SimEvent::AccessRequested { app }
                | SimEvent::Interrupted { app }
                | SimEvent::Resumed { app }
                | SimEvent::CommCompleted { app } => {
                    let _ = write!(out, " {}", app.0);
                }
                SimEvent::AccessGranted { app, grant } => {
                    let _ = write!(out, " {} {}", app.0, grant.label());
                }
                SimEvent::DelayBounded { app, max_wait_secs } => {
                    let _ = write!(out, " {} {max_wait_secs:?}", app.0);
                }
                SimEvent::CommStarted { app, seconds } => {
                    let _ = write!(out, " {} {seconds:?}", app.0);
                }
                SimEvent::TransferStarted {
                    app,
                    transfer,
                    bytes,
                }
                | SimEvent::TransferCompleted {
                    app,
                    transfer,
                    bytes,
                } => {
                    let _ = write!(out, " {} {} {bytes:?}", app.0, transfer.0);
                }
                SimEvent::TransferProgress {
                    app,
                    transfer,
                    transferred,
                    rate,
                } => {
                    let _ = write!(out, " {} {} {transferred:?} {rate:?}", app.0, transfer.0);
                }
                SimEvent::PhaseFinished { app, phase, bytes } => {
                    let _ = write!(out, " {} {} {bytes:?}", app.0, phase);
                }
                SimEvent::SessionEnded {
                    makespan,
                    coordination_messages,
                } => {
                    let _ = write!(out, " {} {}", makespan.ticks(), coordination_messages);
                }
            }
            out.push('\n');
        }
        out
    }

    /// Parses the encoding produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> Result<Trace, TraceParseError> {
        #[derive(PartialEq, Clone, Copy)]
        enum Section {
            Top,
            App,
            Events,
        }

        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == HEADER => {}
            _ => return Err(TraceParseError::BadHeader),
        }

        let mut section = Section::Top;
        let mut top: BTreeMap<String, String> = BTreeMap::new();
        let mut apps: Vec<BTreeMap<String, String>> = Vec::new();
        let mut events: Vec<Stamped<SimEvent>> = Vec::new();
        for (lineno, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name {
                    "app" => {
                        apps.push(BTreeMap::new());
                        Section::App
                    }
                    "events" => Section::Events,
                    other => return Err(TraceParseError::UnknownSection(other.to_string())),
                };
                continue;
            }
            if section == Section::Events {
                events.push(parse_event(line, lineno + 1)?);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(TraceParseError::Malformed { line: lineno + 1 })?;
            let map = match section {
                Section::Top => &mut top,
                // simlint: allow(R4, section only becomes App when a header pushed an entry)
                Section::App => apps.last_mut().expect("entered [app] section"),
                // simlint: allow(R4, the Events arm continues before reaching the key-value path)
                Section::Events => unreachable!("handled above"),
            };
            let key = key.trim().to_string();
            if map.insert(key.clone(), value.trim().to_string()).is_some() {
                return Err(TraceParseError::DuplicateKey(key));
            }
        }

        let strategy = {
            let v = take(&mut top, "strategy")?;
            scenario::strategy_from_text(&v).map_err(|_| invalid("strategy", &v))?
        };
        let policy = top
            .remove("policy")
            .map(|v| PolicySpec::from_text(&v).map_err(|_| invalid("policy", &v)))
            .transpose()?;
        reject_leftovers(top)?;
        let apps = apps
            .into_iter()
            .map(|mut map| {
                let seed = AppSeed {
                    app: AppId(parse_num(&mut map, "id")?),
                    name: {
                        let v = take(&mut map, "name")?;
                        scenario::unquote(&v).map_err(|_| invalid("name", &v))?
                    },
                    procs: parse_num(&mut map, "procs")?,
                    alone_estimate_secs: parse_num(&mut map, "alone_estimate_secs")?,
                };
                reject_leftovers(map)?;
                Ok(seed)
            })
            .collect::<Result<Vec<_>, TraceParseError>>()?;
        Ok(Trace {
            strategy,
            policy,
            apps,
            events,
        })
    }
}

fn parse_event(line: &str, lineno: usize) -> Result<Stamped<SimEvent>, TraceParseError> {
    let bad = || TraceParseError::BadEvent { line: lineno };
    let mut tokens = line.split_whitespace();
    let time = SimTime::from_ticks(tokens.next().ok_or_else(bad)?.parse().map_err(|_| bad())?);
    let kind = tokens.next().ok_or_else(bad)?;
    let rest: Vec<&str> = tokens.collect();

    fn num<T: std::str::FromStr>(token: &str, lineno: usize) -> Result<T, TraceParseError> {
        token
            .parse()
            .map_err(|_| TraceParseError::BadEvent { line: lineno })
    }
    let app = |token: &str| -> Result<AppId, TraceParseError> { Ok(AppId(num(token, lineno)?)) };

    let event = match (kind, rest.as_slice()) {
        ("phase-started", [a, phase]) => SimEvent::PhaseStarted {
            app: app(a)?,
            phase: num(phase, lineno)?,
        },
        ("access-requested", [a]) => SimEvent::AccessRequested { app: app(a)? },
        ("access-granted", [a, grant]) => SimEvent::AccessGranted {
            app: app(a)?,
            grant: GrantKind::from_label(grant).ok_or_else(bad)?,
        },
        ("delay-bounded", [a, secs]) => SimEvent::DelayBounded {
            app: app(a)?,
            max_wait_secs: num(secs, lineno)?,
        },
        ("interrupted", [a]) => SimEvent::Interrupted { app: app(a)? },
        ("resumed", [a]) => SimEvent::Resumed { app: app(a)? },
        ("comm-started", [a, secs]) => SimEvent::CommStarted {
            app: app(a)?,
            seconds: num(secs, lineno)?,
        },
        ("comm-completed", [a]) => SimEvent::CommCompleted { app: app(a)? },
        ("transfer-started", [a, tid, bytes]) => SimEvent::TransferStarted {
            app: app(a)?,
            transfer: TransferId(num(tid, lineno)?),
            bytes: num(bytes, lineno)?,
        },
        ("transfer-progress", [a, tid, transferred, rate]) => SimEvent::TransferProgress {
            app: app(a)?,
            transfer: TransferId(num(tid, lineno)?),
            transferred: num(transferred, lineno)?,
            rate: num(rate, lineno)?,
        },
        ("transfer-completed", [a, tid, bytes]) => SimEvent::TransferCompleted {
            app: app(a)?,
            transfer: TransferId(num(tid, lineno)?),
            bytes: num(bytes, lineno)?,
        },
        ("phase-finished", [a, phase, bytes]) => SimEvent::PhaseFinished {
            app: app(a)?,
            phase: num(phase, lineno)?,
            bytes: num(bytes, lineno)?,
        },
        ("session-ended", [makespan, messages]) => SimEvent::SessionEnded {
            makespan: SimTime::from_ticks(num(makespan, lineno)?),
            coordination_messages: num(messages, lineno)?,
        },
        (
            "phase-started" | "access-requested" | "access-granted" | "delay-bounded"
            | "interrupted" | "resumed" | "comm-started" | "comm-completed" | "transfer-started"
            | "transfer-progress" | "transfer-completed" | "phase-finished" | "session-ended",
            _,
        ) => return Err(bad()),
        (other, _) => {
            return Err(TraceParseError::UnknownEvent {
                line: lineno,
                kind: other.to_string(),
            })
        }
    };
    Ok(Stamped::new(time, event))
}

impl scenario::CodecError for TraceParseError {
    fn missing_key(key: &'static str) -> Self {
        TraceParseError::MissingKey(key)
    }
    fn invalid_value(key: &str, value: &str) -> Self {
        TraceParseError::InvalidValue {
            key: key.to_string(),
            value: value.to_string(),
        }
    }
    fn unknown_key(key: String) -> Self {
        TraceParseError::UnknownKey(key)
    }
}

/// An observer that records the full event stream into a [`Trace`].
///
/// Create it from the scenario about to run (the recorder captures the
/// replay metadata up front), pass it to
/// [`Session::execute_with`](crate::Session::execute_with), then take the
/// trace out:
///
/// see the [module docs](self) for a complete example.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    strategy: Strategy,
    policy: Option<PolicySpec>,
    apps: Vec<AppSeed>,
    log: EventLog<SimEvent>,
}

impl TraceRecorder {
    /// A recorder for a run of the given scenario.
    pub fn for_scenario(scenario: &Scenario) -> Self {
        TraceRecorder {
            strategy: scenario.strategy,
            policy: scenario.arbitration.clone(),
            apps: AppSeed::for_scenario(scenario),
            log: EventLog::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// True while nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Consumes the recorder and returns the trace.
    pub fn into_trace(self) -> Trace {
        Trace {
            strategy: self.strategy,
            policy: self.policy,
            apps: self.apps,
            events: self.log.into_events(),
        }
    }

    /// A snapshot of the trace recorded so far.
    pub fn trace(&self) -> Trace {
        self.clone().into_trace()
    }
}

impl SimObserver for TraceRecorder {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        self.log.push(at, *event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use mpiio::{AccessPattern, AppConfig};
    use pfs::PfsConfig;

    const MB: f64 = 1.0e6;

    fn scenario(strategy: Strategy) -> Scenario {
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(
                AppId(0),
                "App A",
                336,
                AccessPattern::strided(2.0 * MB, 8),
            ))
            .app(
                AppConfig::new(AppId(1), "App B", 48, AccessPattern::contiguous(8.0 * MB))
                    .starting_at_secs(2.0),
            )
            .strategy(strategy)
            .build()
            .unwrap()
    }

    fn record(scenario: &Scenario) -> (SessionReport, Trace) {
        let mut recorder = TraceRecorder::for_scenario(scenario);
        let report = Session::new(scenario)
            .unwrap()
            .execute_with(&mut recorder)
            .unwrap();
        (report, recorder.into_trace())
    }

    #[test]
    fn recorded_trace_replays_the_report_bit_for_bit() {
        for strategy in [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
            Strategy::Delay { max_wait_secs: 1.5 },
        ] {
            let scenario = scenario(strategy);
            let (report, trace) = record(&scenario);
            assert!(!trace.is_empty());
            assert_eq!(
                trace.replay_report(),
                report,
                "{strategy:?}: replay must reproduce the report"
            );
        }
    }

    #[test]
    fn text_round_trip_is_exact() {
        let scenario = scenario(Strategy::Interrupt);
        let (report, trace) = record(&scenario);
        let text = trace.to_text();
        let decoded = Trace::from_text(&text).unwrap();
        assert_eq!(decoded, trace, "decoded trace differs");
        // Encoding is stable…
        assert_eq!(decoded.to_text(), text);
        // …and the decoded trace still replays the exact report.
        assert_eq!(decoded.replay_report(), report);
    }

    #[test]
    fn policy_runs_record_their_spec_and_round_trip() {
        // A named-policy session's trace carries the spec, survives the
        // codec, and replays to the exact report — while a legacy run's
        // trace has no `policy` line at all (golden-hash compatibility).
        let mut s = scenario(Strategy::Interfere);
        s.arbitration = Some(PolicySpec::with_arg("rr", "1s"));
        let (report, trace) = record(&s);
        assert_eq!(trace.policy, s.arbitration);
        let text = trace.to_text();
        assert!(text.contains("policy = rr(1s)"));
        let decoded = Trace::from_text(&text).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.replay_report(), report);
        assert_eq!(report.policy_label, "rr(1s)");

        let (_, legacy) = record(&scenario(Strategy::FcfsSerialize));
        assert_eq!(legacy.policy, None);
        assert!(!legacy.to_text().contains("policy ="));

        // A malformed policy line is rejected.
        let broken = text.replace("policy = rr(1s)", "policy = rr(1s");
        assert!(matches!(
            Trace::from_text(&broken),
            Err(TraceParseError::InvalidValue { .. })
        ));
    }

    #[test]
    fn recording_does_not_change_the_report() {
        let scenario = scenario(Strategy::FcfsSerialize);
        let unobserved = scenario.run().unwrap();
        let (observed, _) = record(&scenario);
        assert_eq!(observed, unobserved);
    }

    #[test]
    fn trace_contains_the_interesting_event_kinds() {
        let (_, trace) = record(&scenario(Strategy::Interrupt));
        let kinds: std::collections::BTreeSet<&str> =
            trace.events.iter().map(|e| e.event.kind()).collect();
        for expected in [
            "phase-started",
            "access-requested",
            "access-granted",
            "transfer-started",
            "transfer-progress",
            "transfer-completed",
            "phase-finished",
            "session-ended",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
        // The small app preempts the big one under Interrupt.
        assert!(kinds.contains("interrupted"));
        assert!(kinds.contains("resumed"));
        // Events are stamped in non-decreasing time order.
        assert!(trace.events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn delay_bound_and_grants_survive_the_codec() {
        let (_, trace) = record(&scenario(Strategy::Delay { max_wait_secs: 1.5 }));
        let decoded = Trace::from_text(&trace.to_text()).unwrap();
        let bounded = decoded.events.iter().find_map(|e| match e.event {
            SimEvent::DelayBounded { max_wait_secs, .. } => Some(max_wait_secs),
            _ => None,
        });
        assert_eq!(bounded, Some(1.5));
        assert!(decoded.events.iter().any(|e| matches!(
            e.event,
            SimEvent::AccessGranted {
                grant: GrantKind::DelayElapsed,
                ..
            }
        )));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert_eq!(
            Trace::from_text("nonsense"),
            Err(TraceParseError::BadHeader)
        );
        let (_, trace) = record(&scenario(Strategy::FcfsSerialize));
        let text = trace.to_text();
        let broken = text.replace("strategy = fcfs", "strategy = warp");
        assert!(matches!(
            Trace::from_text(&broken),
            Err(TraceParseError::InvalidValue { .. })
        ));
        let unknown_kind = format!("{text}999 teleported 0\n");
        assert!(matches!(
            Trace::from_text(&unknown_kind),
            Err(TraceParseError::UnknownEvent { .. })
        ));
        let bad_arity = format!("{text}999 access-requested\n");
        assert!(matches!(
            Trace::from_text(&bad_arity),
            Err(TraceParseError::BadEvent { .. })
        ));
        let bad_section = format!("{text}\n[warp]\n");
        assert!(matches!(
            Trace::from_text(&bad_section),
            Err(TraceParseError::UnknownSection(_))
        ));
        let missing = text.replace("procs = 336\n", "");
        assert_eq!(
            Trace::from_text(&missing),
            Err(TraceParseError::MissingKey("procs"))
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let (_, trace) = record(&scenario(Strategy::Interfere));
        let text = trace
            .to_text()
            .replace("[events]", "# the stream\n\n[events]");
        assert_eq!(Trace::from_text(&text).unwrap(), trace);
    }

    #[test]
    fn hostile_app_names_survive_the_codec() {
        let mut s = scenario(Strategy::Interfere);
        s.apps[0].name = "multi\nline [app] \"q\"".to_string();
        let (_, trace) = record(&s);
        let decoded = Trace::from_text(&trace.to_text()).unwrap();
        assert_eq!(decoded.apps[0].name, s.apps[0].name);
    }
}
