//! Coupled simulation of applications + CALCioM + parallel file system.
//!
//! A [`Session`] takes a [`Scenario`] — a set of applications (described
//! by [`mpiio::AppConfig`]), a file system configuration, and a CALCioM
//! [`Strategy`] — and plays out the whole run: each application walks its
//! I/O plan, issues coordination calls at its yield points, and submits
//! atomic writes to the shared [`pfs::Pfs`]. The result is a
//! [`SessionReport`] with per-application, per-phase timings from which the
//! experiment harnesses compute write times, interference factors, and
//! machine-wide efficiency metrics.
//!
//! Execution is founded on the [`simcore::Kernel`]: the kernel owns the
//! simulated clock, couples the session's discrete events (phase arrivals,
//! communication completions, resume notifications, delay-budget expiries)
//! with the file system's continuous evolution (transfer completions,
//! cache transitions — [`Pfs`] is the kernel's
//! [`Medium`](simcore::Medium)), and hands each decision point back to the
//! session's event handlers. Arbiter decisions are taken inside those
//! handlers; nothing outside the kernel advances time.
//!
//! The session reaches the shared [`Arbiter`] through a
//! [`CoordinationTransport`]: [`LocalTransport`] (the default) for
//! single-threaded drivers, [`SharedTransport`](crate::SharedTransport)
//! when sessions are built on one thread and executed on another (the
//! `iobench` parallel sweeps). The simulation itself is deterministic —
//! integer-tick clock, no randomness — so the transport never changes the
//! report.
//!
//! Execution is *observable*: [`Session::execute_with`] streams every
//! [`SimEvent`] (phase boundaries, arbiter decisions, transfer
//! starts/progress/completions) to a [`SimObserver`], and the
//! [`SessionReport`] itself is folded from that very stream by a
//! [`ReportBuilder`] — a recorded
//! [`Trace`](crate::Trace) therefore replays to the exact same report.

use crate::api::{CoordinationTransport, LocalTransport};
use crate::arbiter::Arbiter;
use crate::error::{AppRunState, DeadlockApp, Error, SessionError};
use crate::info::IoInfo;
use crate::metrics::{AppObservation, EfficiencyMetric};
use crate::observe::{GrantKind, NullObserver, ReportBuilder, SimEvent, SimObserver};
use crate::scenario::Scenario;
use crate::strategy::{AccessOutcome, Strategy, YieldOutcome};
use mpiio::{AppConfig, Granularity, IoPlan, StepKind};
use pfs::{AppId, Pfs, PfsConfig, TransferId};
use serde::{Deserialize, Serialize};
use simcore::kernel::Kernel;
use simcore::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Timing of one I/O phase of one application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseResult {
    /// Which application.
    pub app: AppId,
    /// Phase index (0-based).
    pub phase: u32,
    /// When the application wanted to start the phase.
    pub requested_start: SimTime,
    /// When it actually executed its first step (after any waiting).
    pub io_start: SimTime,
    /// When the phase completed.
    pub end: SimTime,
    /// Bytes written to the file system in this phase.
    pub bytes: f64,
    /// Time spent in collective-buffering communication steps.
    pub comm_seconds: f64,
    /// Time spent with a write transfer in flight.
    pub write_seconds: f64,
    /// Time spent blocked by coordination (waiting or interrupted).
    pub wait_seconds: f64,
}

impl PhaseResult {
    /// Observed I/O time of the phase: from the moment the application
    /// wanted to do I/O until the phase completed. This is the quantity the
    /// paper plots as "write time" (a serialized application's wait counts
    /// against it).
    pub fn io_time(&self) -> f64 {
        self.end.saturating_since(self.requested_start).as_secs()
    }

    /// Time from the first executed step to completion (excludes the
    /// initial wait).
    pub fn active_time(&self) -> f64 {
        self.end.saturating_since(self.io_start).as_secs()
    }

    /// Observed throughput over the phase (bytes / io_time).
    pub fn throughput(&self) -> f64 {
        let t = self.io_time();
        if t <= 0.0 {
            0.0
        } else {
            self.bytes / t
        }
    }
}

/// All phases of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// Which application.
    pub app: AppId,
    /// Its display name.
    pub name: String,
    /// Number of processes it runs on.
    pub procs: u32,
    /// Analytic stand-alone estimate for one phase (seconds).
    pub alone_estimate_secs: f64,
    /// Per-phase results, in phase order.
    pub phases: Vec<PhaseResult>,
}

impl AppReport {
    /// Total observed I/O time across phases.
    pub fn total_io_seconds(&self) -> f64 {
        self.phases.iter().map(|p| p.io_time()).sum()
    }

    /// The first phase (most experiments use exactly one phase).
    pub fn first_phase(&self) -> &PhaseResult {
        &self.phases[0]
    }

    /// Throughput of each phase, in phase order (Fig. 3's per-iteration
    /// series).
    pub fn phase_throughputs(&self) -> Vec<f64> {
        self.phases.iter().map(|p| p.throughput()).collect()
    }
}

/// The outcome of a session run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Strategy that was in force (the scenario's `strategy` field; see
    /// [`SessionReport::policy_label`] for the authoritative description
    /// when a named arbitration policy was used instead).
    pub strategy: Strategy,
    /// Parameter-carrying label of the arbitration in force (e.g.
    /// `delay(30s)`, `rr(10s)`) — [`Scenario::policy_label`] of the
    /// originating scenario.
    pub policy_label: String,
    /// Per-application reports, in the order the applications were given.
    pub apps: Vec<AppReport>,
    /// Number of coordination messages exchanged.
    pub coordination_messages: u64,
    /// Time at which the last application finished all of its phases.
    pub makespan: SimTime,
}

impl SessionReport {
    /// Report for a specific application.
    pub fn app(&self, id: AppId) -> Option<&AppReport> {
        self.apps.iter().find(|a| a.app == id)
    }

    /// Builds metric observations, one per application, using externally
    /// measured stand-alone times (first phase only).
    ///
    /// Degenerate inputs are well-defined rather than panics:
    ///
    /// * an application missing from `alone_seconds` falls back to its
    ///   analytic [`AppReport::alone_estimate_secs`];
    /// * a zero-duration first phase yields `io_seconds == 0.0` (and an
    ///   interference factor of 1, see
    ///   [`interference_factor`](crate::interference_factor));
    /// * an application that never completed a phase (possible only for
    ///   reports replayed from a truncated trace) is skipped.
    pub fn observations(&self, alone_seconds: &BTreeMap<AppId, f64>) -> Vec<AppObservation> {
        self.apps
            .iter()
            .filter_map(|a| {
                Some(AppObservation {
                    app: a.app,
                    procs: a.procs,
                    io_seconds: a.phases.first()?.io_time(),
                    alone_seconds: alone_seconds
                        .get(&a.app)
                        .copied()
                        .unwrap_or(a.alone_estimate_secs),
                })
            })
            .collect()
    }

    /// Evaluates a machine-wide metric over the first phase of every
    /// application. Degenerate inputs follow the conventions of
    /// [`SessionReport::observations`]; with no completed phases at all
    /// every metric evaluates to `0.0` (an empty sum).
    pub fn metric(&self, metric: EfficiencyMetric, alone_seconds: &BTreeMap<AppId, f64>) -> f64 {
        crate::metrics::evaluate(metric, &self.observations(alone_seconds))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RtState {
    /// Waiting for the scheduled start of the next phase.
    Idle,
    /// Requested access at phase start; waiting to be granted.
    WantAccess,
    /// Yielded mid-phase after an interruption request; waiting to resume.
    Parked,
    /// A communication (shuffle) step is in flight.
    Comm,
    /// A write transfer is in flight.
    Writing,
    /// All phases completed.
    Done,
}

impl RtState {
    /// The public mirror used by deadlock diagnostics.
    fn public(self) -> AppRunState {
        match self {
            RtState::Idle => AppRunState::Idle,
            RtState::WantAccess => AppRunState::WantAccess,
            RtState::Parked => AppRunState::Parked,
            RtState::Comm => AppRunState::Comm,
            RtState::Writing => AppRunState::Writing,
            RtState::Done => AppRunState::Done,
        }
    }
}

/// The session's event fan-out: every emission feeds the internal
/// [`ReportBuilder`] (the report *is* a fold of the stream) and the
/// caller-supplied observer.
struct Emitter<'a, O: SimObserver> {
    builder: ReportBuilder,
    observer: &'a mut O,
}

impl<O: SimObserver> Emitter<'_, O> {
    fn emit(&mut self, at: SimTime, event: SimEvent) {
        self.builder.on_event(at, &event);
        self.observer.on_event(at, &event);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    PhaseStart(AppId),
    CommDone(AppId),
    Resume(AppId),
    /// The bounded-delay budget of the given *phase*'s request expired.
    /// Tagging the phase keeps a stale timer (request granted normally,
    /// phase finished, next phase queued again) from force-granting a
    /// later request before its own budget.
    DelayExpired(AppId, u32),
}

struct AppRuntime {
    cfg: AppConfig,
    plan: IoPlan,
    phase: u32,
    step: usize,
    state: RtState,
    requested_start: SimTime,
    started: bool,
}

impl AppRuntime {
    fn new(cfg: AppConfig) -> Self {
        let plan = cfg.plan();
        let requested_start = cfg.start;
        AppRuntime {
            cfg,
            plan,
            phase: 0,
            step: 0,
            state: RtState::Idle,
            requested_start,
            started: false,
        }
    }

    fn reset_phase_accounting(&mut self, requested_start: SimTime) {
        self.step = 0;
        self.requested_start = requested_start;
        self.started = false;
    }

    fn current_io_info(&self, pfs_cfg: &PfsConfig, granularity: Granularity) -> IoInfo {
        // One derivation for every driver: the phase-start payload comes
        // from `IoInfo::at_phase_start` (the same constructor Coordinator
        // embeddings use), and only the mid-phase progress fields are
        // overwritten here.
        let bytes_remaining = self.plan.remaining_write_bytes_from(self.step);
        let alone_bw = self.cfg.alone_bandwidth(pfs_cfg).max(1.0);
        IoInfo {
            bytes_remaining,
            est_alone_remaining_secs: bytes_remaining / alone_bw,
            ..IoInfo::at_phase_start(&self.cfg, pfs_cfg, granularity)
        }
    }
}

/// The coupled simulator, generic over how it reaches the arbiter.
///
/// `Session<SharedTransport>` is `Send`, so fully-built sessions can be
/// handed to worker threads; `Session<LocalTransport>` (the default) stays
/// on its creating thread and avoids the lock.
pub struct Session<T: CoordinationTransport = LocalTransport> {
    cfg: Scenario,
    transport: T,
    /// The discrete-event kernel: owns the clock, the event queue, and the
    /// file system (the continuous [`simcore::Medium`] it drives).
    kernel: Kernel<Event, Pfs>,
    apps: BTreeMap<AppId, AppRuntime>,
    transfer_owner: BTreeMap<TransferId, AppId>,
    /// Applications currently in `WantAccess`/`Parked` — the candidates
    /// [`Session::notify_granted`] must wake. Kept in sync with the
    /// per-app state by [`Session::set_state`].
    waiting: BTreeSet<AppId>,
    /// Applications that have not yet finished all of their phases.
    live_apps: usize,
}

impl Session<LocalTransport> {
    /// Builds a session from a validated scenario on the in-process
    /// transport.
    pub fn new(scenario: &Scenario) -> Result<Self, Error> {
        Session::with_transport(scenario)
    }

    /// Convenience: build and run in one call.
    pub fn run(scenario: &Scenario) -> Result<SessionReport, Error> {
        Session::new(scenario)?.execute()
    }

    /// Runs a single application alone on the given file system and returns
    /// the observed I/O time of its first phase — the `T_alone` baseline of
    /// the interference factor.
    pub fn run_alone(app: AppConfig, pfs_cfg: PfsConfig) -> Result<f64, Error> {
        let mut app = app;
        app.start = SimTime::ZERO;
        let report = Session::run(&Scenario::new(pfs_cfg, vec![app]))?;
        Ok(report.apps[0].first_phase().io_time())
    }
}

impl<T: CoordinationTransport> Session<T> {
    /// Builds a session from a validated scenario on an explicit transport
    /// type (e.g. [`SharedTransport`](crate::SharedTransport) for sessions
    /// that cross threads).
    pub fn with_transport(scenario: &Scenario) -> Result<Self, Error> {
        scenario.validate_workload()?;
        let cfg = scenario.clone();
        let pfs = Pfs::with_medium(cfg.pfs.clone(), cfg.medium)?;
        // The one policy resolution of this session: legacy strategies
        // keep the `Arbiter::new` shim (which records the strategy),
        // named policies install what `build_policy` resolves.
        let arbiter = match &cfg.arbitration {
            None => Arbiter::new(cfg.strategy, cfg.policy),
            Some(_) => Arbiter::with_policy(cfg.build_policy()?),
        };
        let transport = T::for_scenario(&cfg, arbiter)?;
        let mut kernel = Kernel::new(pfs);
        let mut apps = BTreeMap::new();
        for app_cfg in &cfg.apps {
            let rt = AppRuntime::new(app_cfg.clone());
            kernel.schedule(rt.requested_start, Event::PhaseStart(app_cfg.id));
            apps.insert(app_cfg.id, rt);
        }
        let live_apps = apps.len();
        Ok(Session {
            cfg,
            transport,
            kernel,
            apps,
            transfer_owner: BTreeMap::new(),
            waiting: BTreeSet::new(),
            live_apps,
        })
    }

    /// The transport this session coordinates through — e.g. to read a
    /// [`ClusterTransport`](crate::ClusterTransport)'s message-accounting
    /// stats after cloning it out (transports are shared handles).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Executes the scenario to completion, unobserved (the
    /// [`NullObserver`] short-circuits every observation hook).
    pub fn execute(self) -> Result<SessionReport, Error> {
        self.execute_with(&mut NullObserver)
    }

    /// Executes the scenario to completion, streaming every [`SimEvent`]
    /// to `observer` as it happens.
    ///
    /// The returned report is folded from the very same event stream by an
    /// internal [`ReportBuilder`], so whatever the observer recorded (a
    /// [`Trace`](crate::Trace), a timeline, …) can never disagree with the
    /// aggregate view.
    pub fn execute_with<O: SimObserver>(
        mut self,
        observer: &mut O,
    ) -> Result<SessionReport, Error> {
        let mut em = Emitter {
            builder: ReportBuilder::new(&self.cfg),
            observer,
        };
        let horizon = SimTime::ZERO + self.cfg.horizon;
        while self.live_apps > 0 {
            // The kernel owns time: the next decision point is the
            // earliest of its queue head (phase arrival, communication
            // completion, resume notification, delay-budget expiry), the
            // file system's next internal change (transfer completion,
            // cache transition), and the transport's own wakeup (an
            // in-flight cross-arbiter message arriving — `None` for flat
            // transports).
            let next = match (self.kernel.peek_next_time(), self.transport.next_wakeup()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
            let Some(next) = next else {
                // No decision point on either axis. If in-flight transfers
                // are starved at zero bandwidth (e.g. a zero-capacity
                // constraint), report that specifically: it is a file
                // system sizing problem, not a coordination deadlock.
                let stalled = self.kernel.medium_mut().stalled_transfers();
                if !stalled.is_empty() {
                    return Err(SessionError::StalledTransfer { transfers: stalled }.into());
                }
                let apps = self
                    .apps
                    .values()
                    .filter(|a| a.state != RtState::Done)
                    .map(|a| DeadlockApp {
                        app: a.cfg.id,
                        state: a.state.public(),
                        granted: self.transport.is_granted(a.cfg.id),
                    })
                    .collect();
                return Err(SessionError::Deadlock { apps }.into());
            };
            if next > horizon {
                return Err(SessionError::HorizonExceeded {
                    horizon: self.cfg.horizon,
                }
                .into());
            }

            self.kernel.advance_to(next);
            let now = self.kernel.now();

            // Handle write completions first: they may release the arbiter
            // slot that a queued event's application is waiting for.
            for tid in self.kernel.medium_mut().poll_completed() {
                if let Some(app) = self.transfer_owner.remove(&tid) {
                    self.on_write_complete(tid, app, now, &mut em);
                }
            }

            // Deliver cross-arbiter messages that have arrived by now (a
            // no-op for flat transports): applications granted end-to-end
            // by an arriving slot grant get their resume notifications
            // queued for this very step.
            for app in self.transport.deliver_due(now, &self.waiting) {
                self.kernel.schedule(now, Event::Resume(app));
            }

            // Handle all queued events due now (including events handlers
            // schedule at the present).
            while let Some(event) = self.kernel.pop_due() {
                self.on_event(event, now, &mut em);
            }

            // Sample in-flight transfers once the step settled: rates are
            // piecewise constant between loop iterations, so these samples
            // capture every bandwidth plateau.
            if em.observer.wants_progress() {
                for (&tid, &app) in &self.transfer_owner {
                    if let Some(p) = self.kernel.medium_mut().progress(tid) {
                        em.emit(
                            now,
                            SimEvent::TransferProgress {
                                app,
                                transfer: tid,
                                transferred: p.transferred,
                                rate: p.rate,
                            },
                        );
                    }
                }
            }
        }

        let makespan = self.kernel.now();
        em.emit(
            makespan,
            SimEvent::SessionEnded {
                makespan,
                coordination_messages: self.transport.message_count(),
            },
        );
        Ok(em.builder.finish())
    }

    /// The runtime of a registered application — the single justified
    /// panic behind every per-app lookup: ids only enter the event queue
    /// and the transfer-owner map from the scenario's own application
    /// list, which `with_transport` materialized into `apps`, and entries
    /// are never removed (a finished app parks as `RtState::Done`).
    fn rt_mut(&mut self, app: AppId) -> &mut AppRuntime {
        // simlint: allow(R4, ids originate from the scenario app list that populated the map and entries are never removed)
        self.apps.get_mut(&app).expect("known app")
    }

    fn on_event<O: SimObserver>(&mut self, event: Event, now: SimTime, em: &mut Emitter<'_, O>) {
        match event {
            Event::PhaseStart(app) => {
                let rt = self.rt_mut(app);
                if rt.state != RtState::Idle {
                    return;
                }
                em.emit(
                    now,
                    SimEvent::PhaseStarted {
                        app,
                        phase: rt.phase,
                    },
                );
                let rt = self.rt_mut(app);
                if rt.plan.is_empty() {
                    self.finish_phase(app, now, em);
                    return;
                }
                self.advance_app(app, now, em);
            }
            Event::CommDone(app) => {
                let rt = self.rt_mut(app);
                if rt.state != RtState::Comm {
                    return;
                }
                em.emit(now, SimEvent::CommCompleted { app });
                let rt = self.rt_mut(app);
                rt.step += 1;
                self.advance_app(app, now, em);
            }
            Event::Resume(app) => {
                let rt = self.rt_mut(app);
                if rt.state != RtState::WantAccess && rt.state != RtState::Parked {
                    return;
                }
                let was_parked = rt.state == RtState::Parked;
                if !self.transport.is_granted(app) {
                    return;
                }
                em.emit(
                    now,
                    if was_parked {
                        SimEvent::Resumed { app }
                    } else {
                        SimEvent::AccessGranted {
                            app,
                            grant: GrantKind::AfterWait,
                        }
                    },
                );
                self.execute_step(app, now, em);
            }
            Event::DelayExpired(app, phase) => {
                let rt = self.rt_mut(app);
                if rt.state != RtState::WantAccess || rt.phase != phase {
                    return;
                }
                // The timeout decision belongs to the policy: built-in
                // bounded delay always forces the grant through, but a
                // policy may keep the request queued instead — then the
                // application simply continues waiting for an ordinary
                // grant and no event is emitted.
                let proceed = self.transport.with_app(app, |arb| {
                    arb.set_now(now);
                    arb.delay_expired(app)
                });
                if !proceed {
                    return;
                }
                // A hierarchical transport may accept the forced grant at
                // the leaf while the machine still lacks its shared-PFS
                // slot: the application keeps waiting and resumes when the
                // slot arrives (flat transports are always granted here).
                if !self.transport.is_granted(app) {
                    return;
                }
                em.emit(
                    now,
                    SimEvent::AccessGranted {
                        app,
                        grant: GrantKind::DelayElapsed,
                    },
                );
                self.execute_step(app, now, em);
            }
        }
    }

    fn on_write_complete<O: SimObserver>(
        &mut self,
        tid: TransferId,
        app: AppId,
        now: SimTime,
        em: &mut Emitter<'_, O>,
    ) {
        let rt = self.rt_mut(app);
        if rt.state != RtState::Writing {
            return;
        }
        // simlint: allow(R4, a Writing app entered that state from execute_step on this very step)
        let bytes = match rt.plan.step(rt.step).copied().expect("step exists").kind {
            StepKind::Write { bytes } => bytes,
            // simlint: allow(R4, the Writing state is only entered from a Write step)
            StepKind::Comm { .. } => unreachable!("a writing app sits on a write step"),
        };
        em.emit(
            now,
            SimEvent::TransferCompleted {
                app,
                transfer: tid,
                bytes,
            },
        );
        let rt = self.rt_mut(app);
        rt.step += 1;
        self.advance_app(app, now, em);
    }

    /// Moves an application forward from its current step: issues the
    /// coordination calls attached to the step's position, then either
    /// executes the step, parks the application, or finishes the phase.
    fn advance_app<O: SimObserver>(&mut self, app: AppId, now: SimTime, em: &mut Emitter<'_, O>) {
        let granularity = self.cfg.granularity;
        let (step, plan_len, is_yield, started) = {
            let rt = self.rt_mut(app);
            (
                rt.step,
                rt.plan.len(),
                rt.plan.is_yield_point(rt.step, granularity),
                rt.started,
            )
        };

        if step >= plan_len {
            self.finish_phase(app, now, em);
            return;
        }

        if is_yield {
            // Share fresh information with the other applications
            // (Prepare + Inform).
            let info = {
                let rt = &self.apps[&app];
                rt.current_io_info(&self.cfg.pfs, self.cfg.granularity)
            };

            if !started {
                // Start of the phase: ask for access (Inform + Check/Wait).
                em.emit(now, SimEvent::AccessRequested { app });
                let outcome = self.transport.with_app(app, |arb| {
                    arb.set_now(now);
                    arb.update_info(info);
                    arb.request_access(app)
                });
                match outcome {
                    AccessOutcome::Granted => {
                        // The leaf arbiter admitted the application, but a
                        // hierarchical transport may still be waiting for
                        // its machine's shared-PFS slot; park until the
                        // grant is end-to-end (always true when flat).
                        if !self.transport.is_granted(app) {
                            self.set_state(app, RtState::WantAccess);
                            return;
                        }
                        em.emit(
                            now,
                            SimEvent::AccessGranted {
                                app,
                                grant: GrantKind::Immediate,
                            },
                        );
                    }
                    AccessOutcome::MustWait => {
                        self.set_state(app, RtState::WantAccess);
                        return;
                    }
                    AccessOutcome::MustWaitAtMost(secs) => {
                        em.emit(
                            now,
                            SimEvent::DelayBounded {
                                app,
                                max_wait_secs: secs,
                            },
                        );
                        self.set_state(app, RtState::WantAccess);
                        let phase = self.apps[&app].phase;
                        self.kernel.schedule(
                            now + SimDuration::from_secs(secs),
                            Event::DelayExpired(app, phase),
                        );
                        return;
                    }
                }
            } else {
                // Mid-phase coordination point (Release/Inform between
                // rounds or files): check whether we must yield.
                let outcome = self.transport.with_app(app, |arb| {
                    arb.set_now(now);
                    arb.update_info(info);
                    arb.yield_point(app)
                });
                match outcome {
                    YieldOutcome::Continue => {}
                    YieldOutcome::YieldNow => {
                        em.emit(now, SimEvent::Interrupted { app });
                        self.set_state(app, RtState::Parked);
                        self.notify_granted(now);
                        return;
                    }
                }
            }
        }

        self.execute_step(app, now, em);
    }

    /// Executes the application's current step (communication or write).
    fn execute_step<O: SimObserver>(&mut self, app: AppId, now: SimTime, em: &mut Emitter<'_, O>) {
        let past_end = {
            let rt = &self.apps[&app];
            rt.step >= rt.plan.len()
        };
        if past_end {
            // Can happen when a Resume lands after the plan advanced.
            self.finish_phase(app, now, em);
            return;
        }
        let (kind, procs) = {
            let rt = self.rt_mut(app);
            rt.started = true;
            (
                // simlint: allow(R4, the past_end guard above established step < plan.len)
                rt.plan.step(rt.step).copied().expect("step exists").kind,
                rt.cfg.procs,
            )
        };

        match kind {
            StepKind::Comm { seconds } => {
                em.emit(now, SimEvent::CommStarted { app, seconds });
                self.set_state(app, RtState::Comm);
                self.kernel
                    .schedule(now + SimDuration::from_secs(seconds), Event::CommDone(app));
            }
            StepKind::Write { bytes } => {
                let tid = self.kernel.medium_mut().submit_write(app, bytes, procs);
                em.emit(
                    now,
                    SimEvent::TransferStarted {
                        app,
                        transfer: tid,
                        bytes,
                    },
                );
                self.set_state(app, RtState::Writing);
                self.transfer_owner.insert(tid, app);
                // Zero-byte writes complete immediately; pick them up on the
                // next loop iteration via poll_completed.
            }
        }
    }

    /// Closes the current phase of `app`, releases its coordination slot,
    /// and schedules the next phase (or marks the application done).
    fn finish_phase<O: SimObserver>(&mut self, app: AppId, now: SimTime, em: &mut Emitter<'_, O>) {
        let (more_phases, next_start) = {
            let rt = self.rt_mut(app);
            em.emit(
                now,
                SimEvent::PhaseFinished {
                    app,
                    phase: rt.phase,
                    bytes: rt.plan.total_write_bytes(),
                },
            );
            rt.phase += 1;
            let more = rt.phase < rt.cfg.phases;
            let next_start = if more {
                let scheduled = rt.cfg.start
                    + SimDuration::from_secs(rt.cfg.phase_interval.as_secs() * rt.phase as f64);
                scheduled.max(now)
            } else {
                now
            };
            (more, next_start)
        };

        self.transport.with_app(app, |arb| {
            arb.set_now(now);
            arb.release(app);
        });
        self.notify_granted(now);

        if more_phases {
            let rt = self.rt_mut(app);
            rt.reset_phase_accounting(next_start);
            self.set_state(app, RtState::Idle);
            self.kernel.schedule(next_start, Event::PhaseStart(app));
        } else {
            self.set_state(app, RtState::Done);
            self.live_apps -= 1;
        }
    }

    /// Writes an application's state and keeps the waiting index in sync:
    /// apps enter it on `WantAccess`/`Parked` and leave it on anything else.
    fn set_state(&mut self, app: AppId, state: RtState) {
        let rt = self.rt_mut(app);
        rt.state = state;
        if matches!(state, RtState::WantAccess | RtState::Parked) {
            self.waiting.insert(app);
        } else {
            self.waiting.remove(&app);
        }
    }

    /// Schedules a resume notification (with the coordination latency) for
    /// every parked application that the transport reports granted
    /// end-to-end ([`CoordinationTransport::resumable`] — the flat
    /// granted ∩ waiting intersection, further gated on shared-PFS slots
    /// for hierarchical transports).
    fn notify_granted(&mut self, now: SimTime) {
        let overhead = self.cfg.coordination_overhead;
        for app in self.transport.resumable(&self.waiting) {
            self.kernel.schedule(now + overhead, Event::Resume(app));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SharedTransport;
    use crate::error::ConfigError;
    use mpiio::AccessPattern;
    use simcore::fair::SharingModel;

    const MB: f64 = 1.0e6;

    fn rennes() -> PfsConfig {
        PfsConfig::grid5000_rennes()
    }

    fn app(id: usize, name: &str, procs: u32, mb_per_proc: f64, start_secs: f64) -> AppConfig {
        AppConfig::new(
            AppId(id),
            name,
            procs,
            AccessPattern::contiguous(mb_per_proc * MB),
        )
        .starting_at_secs(start_secs)
    }

    #[test]
    fn single_app_matches_alone_estimate() {
        let a = app(0, "A", 336, 16.0, 0.0);
        let estimate = a.estimate_alone_seconds(&rennes());
        let measured = Session::run_alone(a, rennes()).unwrap();
        assert!(
            (measured - estimate).abs() / estimate < 0.05,
            "measured {measured}, estimate {estimate}"
        );
    }

    #[test]
    fn interference_slows_both_apps() {
        let scenario = Scenario::builder(rennes())
            .app(app(0, "A", 336, 16.0, 0.0))
            .app(app(1, "B", 336, 16.0, 0.0))
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        let alone = Session::run_alone(app(0, "A", 336, 16.0, 0.0), rennes()).unwrap();
        let ta = report.app(AppId(0)).unwrap().first_phase().io_time();
        let tb = report.app(AppId(1)).unwrap().first_phase().io_time();
        assert!(ta > 1.5 * alone, "ta={ta} alone={alone}");
        assert!(tb > 1.5 * alone, "tb={tb} alone={alone}");
    }

    #[test]
    fn fcfs_impacts_only_the_second_application() {
        let alone = Session::run_alone(app(0, "A", 336, 16.0, 0.0), rennes()).unwrap();
        let scenario = Scenario::builder(rennes())
            .app(app(0, "A", 336, 16.0, 0.0))
            .app(app(1, "B", 336, 16.0, 2.0))
            .strategy(Strategy::FcfsSerialize)
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        let ta = report.app(AppId(0)).unwrap().first_phase().io_time();
        let tb = report.app(AppId(1)).unwrap().first_phase().io_time();
        // A is barely impacted; B waits for A's remaining time then writes.
        assert!((ta - alone).abs() / alone < 0.05, "ta={ta} alone={alone}");
        let expected_b = (alone - 2.0) + alone;
        assert!(
            (tb - expected_b).abs() / expected_b < 0.10,
            "tb={tb} expected≈{expected_b}"
        );
    }

    #[test]
    fn interrupt_impacts_only_the_first_application() {
        // A big (many files), B small; B arrives later and interrupts A.
        let a =
            AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0 * MB)).with_files(4);
        let b = app(1, "B", 336, 16.0, 3.0);
        let alone_a = Session::run_alone(a.clone(), rennes()).unwrap();
        let alone_b = Session::run_alone(b.clone(), rennes()).unwrap();
        let scenario = Scenario::builder(rennes())
            .apps([a, b])
            .strategy(Strategy::Interrupt)
            .granularity(Granularity::File)
            .build()
            .unwrap();
        let report = scenario.run().unwrap();
        let ta = report.app(AppId(0)).unwrap().first_phase().io_time();
        let tb = report.app(AppId(1)).unwrap().first_phase().io_time();
        // B should be close to its alone time (it had to wait at most for
        // the current file of A to finish).
        assert!(
            tb < alone_b + alone_a / 4.0 + 0.5,
            "tb={tb} alone_b={alone_b} alone_a={alone_a}"
        );
        // A pays roughly B's write time on top of its own.
        assert!(ta > alone_a + 0.5 * alone_b, "ta={ta} alone_a={alone_a}");
        assert!(ta < alone_a + 2.0 * alone_b, "ta={ta} alone_a={alone_a}");
    }

    #[test]
    fn serialization_beats_interference_in_aggregate() {
        let apps = vec![app(0, "A", 384, 16.0, 0.0), app(1, "B", 384, 16.0, 1.0)];
        let interfering = Scenario::new(rennes(), apps.clone()).run().unwrap();
        let fcfs = Scenario::builder(rennes())
            .apps(apps)
            .strategy(Strategy::FcfsSerialize)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let sum =
            |r: &SessionReport| -> f64 { r.apps.iter().map(|a| a.first_phase().io_time()).sum() };
        assert!(
            sum(&fcfs) < sum(&interfering),
            "fcfs={} interfering={}",
            sum(&fcfs),
            sum(&interfering)
        );
    }

    #[test]
    fn dynamic_never_worse_than_both_fixed_choices() {
        // Fig. 11 setup (scaled down): equal core counts, A writes 4× B.
        let a =
            AppConfig::new(AppId(0), "A", 512, AccessPattern::contiguous(16.0 * MB)).with_files(4);
        let b = app(1, "B", 512, 16.0, 4.0);
        let alone: BTreeMap<AppId, f64> = [
            (AppId(0), Session::run_alone(a.clone(), rennes()).unwrap()),
            (AppId(1), Session::run_alone(b.clone(), rennes()).unwrap()),
        ]
        .into_iter()
        .collect();
        let run = |strategy: Strategy| -> f64 {
            Scenario::builder(rennes())
                .apps([a.clone(), b.clone()])
                .strategy(strategy)
                .granularity(Granularity::File)
                .build()
                .unwrap()
                .run()
                .unwrap()
                .metric(EfficiencyMetric::CpuSecondsWasted, &alone)
        };
        let dynamic = run(Strategy::Dynamic);
        let fcfs = run(Strategy::FcfsSerialize);
        let interrupt = run(Strategy::Interrupt);
        let tolerance = 1.05;
        assert!(
            dynamic <= fcfs.min(interrupt) * tolerance,
            "dynamic={dynamic} fcfs={fcfs} interrupt={interrupt}"
        );
    }

    #[test]
    fn periodic_phases_report_one_result_each() {
        let a = app(0, "A", 64, 4.0, 0.0).with_periodic_phases(5, SimDuration::from_secs(10.0));
        let report = Scenario::new(rennes(), vec![a]).run().unwrap();
        let phases = &report.apps[0].phases;
        assert_eq!(phases.len(), 5);
        // Starts are 10 s apart.
        for (i, p) in phases.iter().enumerate() {
            assert!((p.requested_start.as_secs() - 10.0 * i as f64).abs() < 1e-6);
            assert!(p.io_time() > 0.0);
        }
    }

    #[test]
    fn delay_strategy_bounds_the_wait() {
        let a = app(0, "A", 336, 64.0, 0.0); // long write
        let b = app(1, "B", 336, 16.0, 1.0);
        let report = Scenario::builder(rennes())
            .apps([a, b])
            .strategy(Strategy::Delay { max_wait_secs: 2.0 })
            .build()
            .unwrap()
            .run()
            .unwrap();
        let b_phase = report.app(AppId(1)).unwrap().first_phase();
        assert!(
            (b_phase.wait_seconds - 2.0).abs() < 0.1,
            "waited {}",
            b_phase.wait_seconds
        );
    }

    #[test]
    fn stale_delay_timer_does_not_force_grant_a_later_phase() {
        // B's first request is granted normally (A releases) long before
        // its 15 s delay budget expires, so the budget timer is still
        // queued when B's *second* phase is waiting behind A's second
        // phase. The stale timer must not force that later request
        // through early: it belongs to phase 0, not phase 1.
        let a = app(0, "A", 336, 16.0, 0.0) // 6.4 s per phase
            .with_periodic_phases(2, SimDuration::from_secs(12.0));
        let b = app(1, "B", 48, 8.0, 1.0) // ~0.7 s alone
            .with_periodic_phases(2, SimDuration::from_secs(12.0));
        let report = Scenario::builder(rennes())
            .apps([a, b])
            .strategy(Strategy::Delay {
                max_wait_secs: 15.0,
            })
            .build()
            .unwrap()
            .run()
            .unwrap();

        let b_phases = &report.app(AppId(1)).unwrap().phases;
        // Phase 0: granted when A releases at ~6.4 s → waited ~5.4 s,
        // well under the budget (the timer at t = 16 s stays queued).
        assert!(
            (b_phases[0].wait_seconds - 5.4).abs() < 0.5,
            "phase 0 waited {}",
            b_phases[0].wait_seconds
        );
        // Phase 1 requests at t = 13 s while A's second phase (12 → 18.4)
        // holds the file system. The stale phase-0 timer fires at 16 s;
        // B must keep waiting for A's release (~18.4 s), not be
        // force-granted at 16 s.
        assert!(
            b_phases[1].io_start.as_secs() > 17.0,
            "phase 1 started at {} — force-granted by a stale timer",
            b_phases[1].io_start.as_secs()
        );
        assert!(
            (b_phases[1].wait_seconds - 5.4).abs() < 0.5,
            "phase 1 waited {}",
            b_phases[1].wait_seconds
        );
    }

    #[test]
    fn report_accessors_and_metrics() {
        let apps = vec![app(0, "A", 336, 16.0, 0.0), app(1, "B", 48, 16.0, 0.0)];
        let report = Scenario::new(rennes(), apps).run().unwrap();
        assert!(report.app(AppId(0)).is_some());
        assert!(report.app(AppId(9)).is_none());
        assert!(report.makespan > SimTime::ZERO);
        assert!(report.coordination_messages > 0);
        let alone = BTreeMap::new();
        let obs = report.observations(&alone);
        assert_eq!(obs.len(), 2);
        assert!(report.metric(EfficiencyMetric::TotalIoTime, &alone) > 0.0);
        assert!(
            report.metric(EfficiencyMetric::CpuSecondsWasted, &alone)
                > report.metric(EfficiencyMetric::TotalIoTime, &alone)
        );
    }

    #[test]
    fn observations_survive_missing_baselines_and_zero_duration_phases() {
        // The documented degenerate behaviors of `observations`/`metric`:
        // a missing `alone_seconds` entry falls back to the analytic
        // estimate, a zero-duration phase contributes zero I/O time (and
        // an interference factor clamped to 1), and an app without phases
        // is skipped rather than panicking.
        let zero_phase = PhaseResult {
            app: AppId(0),
            phase: 0,
            requested_start: SimTime::from_secs(1.0),
            io_start: SimTime::from_secs(1.0),
            end: SimTime::from_secs(1.0),
            bytes: 0.0,
            comm_seconds: 0.0,
            write_seconds: 0.0,
            wait_seconds: 0.0,
        };
        let report = SessionReport {
            strategy: Strategy::Interfere,
            policy_label: "interfering".into(),
            apps: vec![
                AppReport {
                    app: AppId(0),
                    name: "zero".into(),
                    procs: 16,
                    alone_estimate_secs: 2.5,
                    phases: vec![zero_phase],
                },
                AppReport {
                    app: AppId(1),
                    name: "phaseless".into(),
                    procs: 8,
                    alone_estimate_secs: 1.0,
                    phases: Vec::new(),
                },
            ],
            coordination_messages: 0,
            makespan: SimTime::from_secs(1.0),
        };

        let alone = BTreeMap::new();
        let obs = report.observations(&alone);
        assert_eq!(obs.len(), 1, "phaseless app is skipped");
        assert_eq!(obs[0].io_seconds, 0.0);
        assert_eq!(
            obs[0].alone_seconds, 2.5,
            "missing baseline falls back to the analytic estimate"
        );
        assert_eq!(obs[0].interference_factor(), 1.0);

        for metric in EfficiencyMetric::ALL {
            let value = report.metric(metric, &alone);
            assert!(value.is_finite(), "{metric:?} must stay finite: {value}");
        }
        assert_eq!(report.metric(EfficiencyMetric::TotalIoTime, &alone), 0.0);
        assert_eq!(
            report.metric(EfficiencyMetric::SumInterferenceFactors, &alone),
            1.0
        );

        // An explicit zero baseline is equally safe (documented: factor 1).
        let zero_alone: BTreeMap<AppId, f64> = [(AppId(0), 0.0)].into_iter().collect();
        let obs = report.observations(&zero_alone);
        assert_eq!(obs[0].interference_factor(), 1.0);

        // No completed phases at all: every metric is the empty sum.
        let empty = SessionReport {
            apps: vec![report.apps[1].clone()],
            ..report.clone()
        };
        assert!(empty.observations(&alone).is_empty());
        for metric in EfficiencyMetric::ALL {
            assert_eq!(empty.metric(metric, &alone), 0.0);
        }
    }

    #[test]
    fn validation_errors_are_typed() {
        let scenario = Scenario::new(rennes(), vec![]);
        assert_eq!(
            Session::run(&scenario).unwrap_err(),
            Error::Config(ConfigError::NoApplications)
        );
        let scenario = Scenario::new(
            rennes(),
            vec![app(0, "A", 336, 16.0, 0.0), app(0, "B", 48, 16.0, 0.0)],
        );
        assert_eq!(
            Session::run(&scenario).unwrap_err(),
            Error::Config(ConfigError::DuplicateApp(AppId(0)))
        );
        let mut scenario = Scenario::new(rennes(), vec![app(0, "A", 336, 16.0, 0.0)]);
        scenario.pfs.server_bw = -1.0;
        assert!(matches!(
            Session::run(&scenario).unwrap_err(),
            Error::Config(ConfigError::Pfs(_))
        ));
    }

    #[test]
    fn horizon_exceeded_is_typed() {
        let scenario = Scenario::builder(rennes())
            .app(app(0, "A", 336, 16.0, 0.0))
            .horizon(SimDuration::from_secs(0.5))
            .build()
            .unwrap();
        assert!(matches!(
            scenario.run().unwrap_err(),
            Error::Session(SessionError::HorizonExceeded { .. })
        ));
    }

    #[test]
    fn starved_transfers_surface_as_stalled_not_deadlock() {
        // A zero-capacity interconnect pins every write at zero bandwidth:
        // the session must fail fast with the structured stalled-transfer
        // error (a file system sizing problem), not hang to the horizon or
        // misreport a coordination deadlock — on either sharing medium.
        for medium in [SharingModel::MaxMin, SharingModel::FairFast] {
            let scenario = Scenario::builder(rennes())
                .app(app(0, "A", 336, 16.0, 0.0))
                .medium(medium)
                .build()
                .unwrap();
            let mut session = Session::<LocalTransport>::with_transport(&scenario).unwrap();
            session.kernel.medium_mut().throttle_interconnect(0.0);
            let err = session.execute().unwrap_err();
            match &err {
                Error::Session(SessionError::StalledTransfer { transfers }) => {
                    assert!(
                        transfers.iter().any(|&(a, _)| a == AppId(0)),
                        "{medium:?}: the starved app is named"
                    );
                }
                other => panic!("{medium:?}: expected StalledTransfer, got {other:?}"),
            }
            assert!(err.to_string().contains("stalled"));
        }
    }

    #[test]
    fn fair_fast_medium_runs_sessions_end_to_end() {
        // The virtual-time medium drives the same coordination machinery:
        // a two-application mix runs to completion under every strategy,
        // and on this equal-share workload the serialized makespan matches
        // the exact max-min medium's to within a tick-rounding sliver.
        let apps = || [app(0, "A", 336, 16.0, 0.0), app(1, "B", 336, 16.0, 0.5)];
        for strategy in [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
        ] {
            let fair = Scenario::builder(rennes())
                .apps(apps())
                .strategy(strategy)
                .medium(SharingModel::FairFast)
                .build()
                .unwrap()
                .run()
                .unwrap();
            let exact = Scenario::builder(rennes())
                .apps(apps())
                .strategy(strategy)
                .build()
                .unwrap()
                .run()
                .unwrap();
            let (f, e) = (fair.makespan.as_secs(), exact.makespan.as_secs());
            assert!(
                (f - e).abs() / e < 0.02,
                "{strategy:?}: fair-fast makespan {f} vs max-min {e}"
            );
        }
    }

    #[test]
    fn named_policies_run_sessions_end_to_end() {
        use crate::arbitration::PolicySpec;
        let apps = || [app(0, "A", 336, 16.0, 0.0), app(1, "B", 512, 16.0, 2.0)];
        // A legacy strategy and its registry twin produce the same report
        // (only the label provenance differs, and even that matches).
        let by_strategy = Scenario::builder(rennes())
            .apps(apps())
            .strategy(Strategy::FcfsSerialize)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let by_spec = Scenario::builder(rennes())
            .apps(apps())
            .arbitration(PolicySpec::new("fcfs"))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(by_spec.policy_label, "fcfs");
        assert_eq!(by_spec.apps, by_strategy.apps);
        assert_eq!(
            by_spec.coordination_messages,
            by_strategy.coordination_messages
        );

        // A policy the Strategy enum cannot express runs to completion:
        // under priority(w=cores), the bigger B preempts A.
        let report = Scenario::builder(rennes())
            .apps(apps())
            .arbitration(PolicySpec::with_arg("priority", "w=cores"))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.policy_label, "priority(w=cores)");
        assert_eq!(report.apps.len(), 2);
        assert!(report.apps.iter().all(|a| !a.phases.is_empty()));

        // Round-robin quantum time-slices: both finish, and A (preempted
        // mid-phase by the quantum) pays waiting time.
        let rr = Scenario::builder(rennes())
            .apps(apps())
            .arbitration(PolicySpec::with_arg("rr", "1s"))
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(rr.policy_label, "rr(1s)");
        assert!(rr.apps.iter().all(|a| !a.phases.is_empty()));
    }

    #[test]
    fn shared_transport_reproduces_the_local_report_exactly() {
        // The determinism convention of DESIGN.md: same scenario, same
        // report, bit for bit — whichever transport carries the
        // coordination traffic.
        let scenario = Scenario::builder(rennes())
            .app(app(0, "A", 336, 16.0, 0.0))
            .app(app(1, "B", 48, 16.0, 2.0))
            .strategy(Strategy::Interrupt)
            .build()
            .unwrap();
        let local = scenario.run().unwrap();
        let shared = scenario.run_shared().unwrap();
        assert_eq!(local, shared);
        // And a Session<SharedTransport> built here survives being moved
        // to another thread before executing.
        let session = Session::<SharedTransport>::with_transport(&scenario).unwrap();
        let remote = std::thread::spawn(move || session.execute().unwrap())
            .join()
            .expect("worker thread");
        assert_eq!(local, remote);
    }

    #[test]
    fn phase_decomposition_accounts_comm_and_write() {
        let a = AppConfig::new(AppId(0), "A", 512, AccessPattern::strided(2.0 * MB, 8));
        let report = Scenario::new(rennes(), vec![a]).run().unwrap();
        let phase = report.apps[0].first_phase();
        assert!(phase.comm_seconds > 0.0, "strided pattern has comm time");
        assert!(phase.write_seconds > 0.0);
        assert!(phase.wait_seconds == 0.0, "alone app never waits");
        // Total accounted time is close to the active time.
        let accounted = phase.comm_seconds + phase.write_seconds;
        assert!(
            (accounted - phase.active_time()).abs() < 0.05 * phase.active_time(),
            "accounted {accounted} vs active {}",
            phase.active_time()
        );
    }
}
