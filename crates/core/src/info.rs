//! Information exchanged between applications.
//!
//! The paper's `Prepare(MPI_Info info)` call lets each layer of the I/O
//! stack attach knowledge about upcoming accesses — number of files, number
//! of collective-buffering rounds, amount of data per round, etc. — that is
//! then shipped to the other running applications by `Inform()`. [`IoInfo`]
//! is the typed equivalent; [`IoInfo::to_pairs`] /
//! [`IoInfo::from_pairs`] provide the flat `(key, value)` representation
//! that mirrors the `MPI_Info` object of the paper's API.

use crate::error::InfoError;
use mpiio::Granularity;
use pfs::AppId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Knowledge about one application's ongoing / upcoming I/O activity, as
/// shared with the other applications through CALCioM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IoInfo {
    /// The application this information describes.
    pub app: AppId,
    /// Number of processes (cores) the application runs on. Used by
    /// machine-wide efficiency metrics that weight I/O time by allocated
    /// resources.
    pub procs: u32,
    /// Number of files the current I/O phase writes.
    pub files_total: u32,
    /// Number of collective-buffering rounds in the current phase.
    pub rounds_total: u32,
    /// Total bytes the current phase writes.
    pub bytes_total: f64,
    /// Bytes not yet written in the current phase.
    pub bytes_remaining: f64,
    /// Estimated duration of the full phase if the application ran alone.
    pub est_alone_total_secs: f64,
    /// Estimated time to finish the remaining work if the application ran
    /// alone from now on.
    pub est_alone_remaining_secs: f64,
    /// Fraction of the file system's aggregate bandwidth this application
    /// can drive on its own (its client-side demand), in `[0, 1]`. Two
    /// applications whose fractions sum to at most 1 can overlap without
    /// slowing each other down — the situation of Fig. 7(b)/Fig. 12 where
    /// interference is lower than expected.
    pub pfs_share: f64,
    /// How often the application issues coordination calls (how quickly it
    /// could yield).
    pub granularity: Granularity,
}

impl IoInfo {
    /// The information an application would share at the *start* of an
    /// I/O phase, derived from its configuration and the target file
    /// system — the payload a driver embedding
    /// [`Coordinator::prepare`](crate::Coordinator::prepare) hands over
    /// before its first `Inform()`. (Mid-phase refreshes subtract the
    /// bytes already written; see the fields' docs.)
    pub fn at_phase_start(
        cfg: &mpiio::AppConfig,
        pfs: &pfs::PfsConfig,
        granularity: Granularity,
    ) -> IoInfo {
        let plan = cfg.plan();
        let bytes_total = plan.total_write_bytes();
        let alone_bw = cfg.alone_bandwidth(pfs).max(1.0);
        IoInfo {
            app: cfg.id,
            procs: cfg.procs,
            files_total: cfg.files,
            rounds_total: cfg.collective.rounds_for(&cfg.pattern, cfg.procs),
            bytes_total,
            bytes_remaining: bytes_total,
            est_alone_total_secs: cfg.estimate_alone_seconds(pfs),
            est_alone_remaining_secs: bytes_total / alone_bw,
            pfs_share: cfg.pfs_demand_fraction(pfs),
            granularity,
        }
    }

    /// Fraction of the phase already completed, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.bytes_total <= 0.0 {
            return 1.0;
        }
        (1.0 - self.bytes_remaining / self.bytes_total).clamp(0.0, 1.0)
    }

    /// Serializes to flat `(key, value)` pairs, mirroring the `MPI_Info`
    /// structure used by the paper's `Prepare` call.
    pub fn to_pairs(&self) -> BTreeMap<String, String> {
        let mut map = BTreeMap::new();
        map.insert("app".into(), self.app.0.to_string());
        map.insert("procs".into(), self.procs.to_string());
        map.insert("files_total".into(), self.files_total.to_string());
        map.insert("rounds_total".into(), self.rounds_total.to_string());
        map.insert("bytes_total".into(), format!("{}", self.bytes_total));
        map.insert(
            "bytes_remaining".into(),
            format!("{}", self.bytes_remaining),
        );
        map.insert(
            "est_alone_total_secs".into(),
            format!("{}", self.est_alone_total_secs),
        );
        map.insert(
            "est_alone_remaining_secs".into(),
            format!("{}", self.est_alone_remaining_secs),
        );
        map.insert("pfs_share".into(), format!("{}", self.pfs_share));
        map.insert("granularity".into(), self.granularity.label().to_string());
        map
    }

    /// Parses the flat representation produced by [`IoInfo::to_pairs`].
    pub fn from_pairs(pairs: &BTreeMap<String, String>) -> Result<Self, InfoError> {
        fn get<'a>(m: &'a BTreeMap<String, String>, k: &str) -> Result<&'a str, InfoError> {
            m.get(k)
                .map(|s| s.as_str())
                .ok_or_else(|| InfoError::MissingKey(k.to_string()))
        }
        fn parse<T: std::str::FromStr>(s: &str, k: &str) -> Result<T, InfoError> {
            s.parse().map_err(|_| InfoError::InvalidValue {
                key: k.to_string(),
                value: s.to_string(),
            })
        }
        let granularity_label = get(pairs, "granularity")?;
        let granularity = Granularity::from_label(granularity_label)
            .ok_or_else(|| InfoError::UnknownGranularity(granularity_label.to_string()))?;
        Ok(IoInfo {
            app: AppId(parse(get(pairs, "app")?, "app")?),
            procs: parse(get(pairs, "procs")?, "procs")?,
            files_total: parse(get(pairs, "files_total")?, "files_total")?,
            rounds_total: parse(get(pairs, "rounds_total")?, "rounds_total")?,
            bytes_total: parse(get(pairs, "bytes_total")?, "bytes_total")?,
            bytes_remaining: parse(get(pairs, "bytes_remaining")?, "bytes_remaining")?,
            est_alone_total_secs: parse(
                get(pairs, "est_alone_total_secs")?,
                "est_alone_total_secs",
            )?,
            est_alone_remaining_secs: parse(
                get(pairs, "est_alone_remaining_secs")?,
                "est_alone_remaining_secs",
            )?,
            pfs_share: parse(get(pairs, "pfs_share")?, "pfs_share")?,
            granularity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IoInfo {
        IoInfo {
            app: AppId(3),
            procs: 2048,
            files_total: 4,
            rounds_total: 64,
            bytes_total: 32.0e9,
            bytes_remaining: 8.0e9,
            est_alone_total_secs: 30.0,
            est_alone_remaining_secs: 7.5,
            pfs_share: 0.8,
            granularity: Granularity::Round,
        }
    }

    #[test]
    fn progress_fraction() {
        let info = sample();
        assert!((info.progress() - 0.75).abs() < 1e-12);
        let done = IoInfo {
            bytes_remaining: 0.0,
            ..sample()
        };
        assert_eq!(done.progress(), 1.0);
        let empty = IoInfo {
            bytes_total: 0.0,
            bytes_remaining: 0.0,
            ..sample()
        };
        assert_eq!(empty.progress(), 1.0);
    }

    #[test]
    fn pairs_round_trip() {
        let info = sample();
        let pairs = info.to_pairs();
        assert_eq!(pairs.get("procs").unwrap(), "2048");
        assert_eq!(pairs.get("granularity").unwrap(), "round");
        let back = IoInfo::from_pairs(&pairs).unwrap();
        assert_eq!(back, info);
    }

    #[test]
    fn from_pairs_reports_missing_and_invalid_keys() {
        let mut pairs = sample().to_pairs();
        pairs.remove("procs");
        assert_eq!(
            IoInfo::from_pairs(&pairs).unwrap_err(),
            InfoError::MissingKey("procs".into())
        );

        let mut pairs = sample().to_pairs();
        pairs.insert("granularity".into(), "banana".into());
        assert_eq!(
            IoInfo::from_pairs(&pairs).unwrap_err(),
            InfoError::UnknownGranularity("banana".into())
        );

        let mut pairs = sample().to_pairs();
        pairs.insert("bytes_total".into(), "not-a-number".into());
        assert!(matches!(
            IoInfo::from_pairs(&pairs).unwrap_err(),
            InfoError::InvalidValue { .. }
        ));
    }
}
