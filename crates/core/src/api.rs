//! The CALCioM application-facing API.
//!
//! Section III-C of the paper defines the calls an application (or the I/O
//! library / MPI-IO layer acting on its behalf) makes on its *coordinator*
//! process:
//!
//! | Paper call        | [`Coordinator`] method       |
//! |-------------------|------------------------------|
//! | `Prepare(info)`   | [`Coordinator::prepare`]     |
//! | `Inform()`        | [`Coordinator::inform`]      |
//! | `Check(&auth)`    | [`Coordinator::check`]       |
//! | `Wait()`          | [`Coordinator::wait`] (semantics: spin on `check` in the simulation, see below) |
//! | `Release()`       | [`Coordinator::release`]     |
//! | `Complete()`      | [`Coordinator::complete`]    |
//!
//! In the paper the coordinator is rank 0 of the application and the calls
//! exchange MPI messages with the other applications' coordinators. In this
//! reproduction the transport is replaced by a shared in-process
//! [`Arbiter`]; the *information exchanged* and the *decisions taken* are
//! the same. [`Session`](crate::Session) uses exactly this code path
//! internally; the standalone `Coordinator` exists so that library users
//! can embed CALCioM coordination in their own drivers.

use crate::arbiter::Arbiter;
use crate::info::IoInfo;
use crate::strategy::{AccessOutcome, YieldOutcome};
use pfs::AppId;
use std::cell::RefCell;
use std::rc::Rc;

/// A shared handle to the coordination state, cloned into every
/// application's [`Coordinator`].
pub type SharedArbiter = Rc<RefCell<Arbiter>>;

/// Wraps an [`Arbiter`] for sharing between coordinators.
pub fn shared(arbiter: Arbiter) -> SharedArbiter {
    Rc::new(RefCell::new(arbiter))
}

/// Per-application facade over the CALCioM coordination protocol, exposing
/// the API of Section III-C of the paper.
#[derive(Clone)]
pub struct Coordinator {
    app: AppId,
    arbiter: SharedArbiter,
    prepared: Vec<IoInfo>,
}

impl Coordinator {
    /// Creates the coordinator for application `app`, attached to the
    /// shared coordination state.
    pub fn new(app: AppId, arbiter: SharedArbiter) -> Self {
        Coordinator {
            app,
            arbiter,
            prepared: Vec::new(),
        }
    }

    /// The application this coordinator speaks for.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// `Prepare(MPI_Info info)`: stacks information about the upcoming I/O
    /// accesses. A later [`Coordinator::complete`] unstacks it.
    pub fn prepare(&mut self, info: IoInfo) {
        self.prepared.push(info);
    }

    /// `Complete()`: unstacks the most recent prepared information.
    pub fn complete(&mut self) -> Option<IoInfo> {
        self.prepared.pop()
    }

    /// `Inform()`: sends the currently prepared information to the other
    /// running applications and registers this application's desire to
    /// access the file system. Returns the immediate outcome.
    pub fn inform(&mut self) -> AccessOutcome {
        let mut arb = self.arbiter.borrow_mut();
        if let Some(info) = self.prepared.last() {
            arb.update_info(info.clone());
        }
        arb.request_access(self.app)
    }

    /// `Check(int* authorized)`: non-blocking query of whether this
    /// application is currently allowed to access the file system.
    pub fn check(&self) -> bool {
        self.arbiter.borrow().is_granted(self.app)
    }

    /// `Wait()`: in the paper this blocks until the other applications
    /// agree that this application should do its I/O. In the discrete-event
    /// reproduction, blocking is expressed by the caller re-invoking
    /// [`Coordinator::check`] as simulated time advances; `wait` therefore
    /// only asserts that a grant is either already available or pending.
    pub fn wait(&self) -> bool {
        self.check()
    }

    /// Coordination point between two atomic accesses (the ADIO-level
    /// `Release(); Inform(); Check()` sequence): refreshes the shared
    /// information and asks whether the application should yield.
    pub fn yield_point(&mut self, refreshed: Option<IoInfo>) -> YieldOutcome {
        let mut arb = self.arbiter.borrow_mut();
        if let Some(info) = refreshed {
            arb.update_info(info);
        } else if let Some(info) = self.prepared.last() {
            arb.update_info(info.clone());
        }
        arb.yield_point(self.app)
    }

    /// `Release()` at the end of the I/O phase: gives up the access slot,
    /// re-evaluates the global strategy and lets the next application in.
    pub fn release(&mut self) {
        self.arbiter.borrow_mut().release(self.app);
    }
}

impl std::fmt::Debug for Coordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("app", &self.app)
            .field("prepared", &self.prepared.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EfficiencyMetric;
    use crate::policy::DynamicPolicy;
    use crate::strategy::Strategy;
    use mpiio::Granularity;

    fn info(app: usize, procs: u32, total: f64, remaining: f64) -> IoInfo {
        IoInfo {
            app: AppId(app),
            procs,
            files_total: 1,
            rounds_total: 4,
            bytes_total: total * 1e9,
            bytes_remaining: remaining * 1e9,
            est_alone_total_secs: total,
            est_alone_remaining_secs: remaining,
            pfs_share: 1.0,
            granularity: Granularity::Round,
        }
    }

    fn pair(strategy: Strategy) -> (Coordinator, Coordinator) {
        let arb = shared(Arbiter::new(
            strategy,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        ));
        (
            Coordinator::new(AppId(0), arb.clone()),
            Coordinator::new(AppId(1), arb),
        )
    }

    #[test]
    fn prepare_and_complete_stack_info() {
        let (mut a, _) = pair(Strategy::FcfsSerialize);
        assert!(a.complete().is_none());
        a.prepare(info(0, 64, 10.0, 10.0));
        a.prepare(info(0, 64, 10.0, 5.0));
        assert_eq!(a.complete().unwrap().est_alone_remaining_secs, 5.0);
        assert_eq!(a.complete().unwrap().est_alone_remaining_secs, 10.0);
        assert!(a.complete().is_none());
    }

    #[test]
    fn fcfs_protocol_through_the_api() {
        let (mut a, mut b) = pair(Strategy::FcfsSerialize);
        a.prepare(info(0, 336, 12.0, 12.0));
        assert_eq!(a.inform(), AccessOutcome::Granted);
        assert!(a.check());

        b.prepare(info(1, 336, 12.0, 12.0));
        assert_eq!(b.inform(), AccessOutcome::MustWait);
        assert!(!b.check());
        assert!(!b.wait());

        // A's mid-phase coordination points do not preempt it under FCFS.
        assert_eq!(a.yield_point(None), YieldOutcome::Continue);

        a.release();
        assert!(b.check(), "B is granted once A releases");
        assert!(b.wait());
    }

    #[test]
    fn interrupt_protocol_through_the_api() {
        let (mut a, mut b) = pair(Strategy::Interrupt);
        a.prepare(info(0, 2048, 28.0, 28.0));
        a.inform();
        b.prepare(info(1, 2048, 7.0, 7.0));
        assert_eq!(b.inform(), AccessOutcome::MustWait);

        // A discovers the interruption request at its next yield point and
        // refreshes its remaining-work information while doing so.
        assert_eq!(
            a.yield_point(Some(info(0, 2048, 28.0, 21.0))),
            YieldOutcome::YieldNow
        );
        assert!(!a.check());
        assert!(b.check());

        // When B releases, A is granted again and resumes.
        b.release();
        assert!(a.check());
        a.release();
    }

    #[test]
    fn coordinator_is_debug_and_reports_app() {
        let (a, _) = pair(Strategy::Interfere);
        assert_eq!(a.app(), AppId(0));
        let dbg = format!("{a:?}");
        assert!(dbg.contains("Coordinator"));
    }
}
