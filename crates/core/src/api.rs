//! The CALCioM application-facing API and its coordination transports.
//!
//! Section III-C of the paper defines the calls an application (or the I/O
//! library / MPI-IO layer acting on its behalf) makes on its *coordinator*
//! process:
//!
//! | Paper call        | [`Coordinator`] method       |
//! |-------------------|------------------------------|
//! | `Prepare(info)`   | [`Coordinator::prepare`]     |
//! | `Inform()`        | [`Coordinator::inform`]      |
//! | `Check(&auth)`    | [`Coordinator::check`]       |
//! | `Wait()`          | [`Coordinator::wait`] (semantics: spin on `check` in the simulation, see below) |
//! | `Release()`       | [`Coordinator::release`]     |
//! | `Complete()`      | [`Coordinator::complete`]    |
//!
//! In the paper the coordinator is rank 0 of the application and the calls
//! exchange MPI messages with the other applications' coordinators. In this
//! reproduction the message exchange is replaced by a
//! [`CoordinationTransport`] that serializes access to the shared
//! [`Arbiter`] — the *information exchanged* and the *decisions taken* are
//! the same. Two transports are provided:
//!
//! * [`LocalTransport`] — `Rc<RefCell<Arbiter>>`, zero-overhead for
//!   single-threaded drivers (the default of [`Session`](crate::Session));
//! * [`SharedTransport`] — `Arc<Mutex<Arbiter>>`, `Send + Sync`, so whole
//!   sessions can be fanned out across threads (the `iobench` sweeps).
//!
//! [`Session`](crate::Session) uses exactly this code path internally; the
//! standalone `Coordinator` exists so that library users can embed CALCioM
//! coordination in their own drivers.

use crate::arbiter::Arbiter;
use crate::error::ConfigError;
use crate::info::IoInfo;
use crate::observe::{GrantKind, NullObserver, SimEvent, SimObserver};
use crate::scenario::Scenario;
use crate::strategy::{AccessOutcome, YieldOutcome};
use pfs::AppId;
use simcore::time::SimTime;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// How coordinators reach the shared coordination state.
///
/// The paper's API is transport-agnostic ("the decisions can be taken by
/// the applications themselves or enforced by a system-provided entity");
/// this trait is the seam where an MPI transport would plug in. Every
/// operation is expressed as an exclusive visit to the [`Arbiter`], which
/// keeps the protocol identical across transports.
///
/// The provided methods form the *topology seam*: a flat transport (one
/// arbiter shared by every application) inherits the defaults, while a
/// hierarchical transport such as
/// [`ClusterTransport`](crate::ClusterTransport) overrides them to route
/// each visit to the owning machine's leaf arbiter and to surface the
/// simulated-time message traffic between arbiters. The defaults are
/// written so that a flat transport's behavior is *bit-identical* to the
/// pre-hierarchy code path — the golden trace hashes pin this.
pub trait CoordinationTransport: Clone {
    /// Wraps a fresh arbiter.
    fn new(arbiter: Arbiter) -> Self;

    /// Runs `f` with exclusive access to the arbiter and returns its
    /// result.
    fn with<R>(&self, f: impl FnOnce(&mut Arbiter) -> R) -> R;

    /// Builds the transport for a validated scenario, consuming the
    /// session's freshly resolved arbiter. Flat transports reject
    /// scenarios carrying a cluster topology (the topology would be
    /// silently ignored otherwise); a cluster-aware transport instead
    /// builds its arbiter tree from [`Scenario::cluster`].
    fn for_scenario(scenario: &Scenario, arbiter: Arbiter) -> Result<Self, ConfigError> {
        if scenario.cluster.is_some() {
            return Err(ConfigError::ClusterUnsupported);
        }
        Ok(Self::new(arbiter))
    }

    /// Runs `f` with exclusive access to the arbiter responsible for
    /// `app` — the routing point of hierarchical transports. Flat
    /// transports have exactly one arbiter, so the default ignores the
    /// application.
    fn with_app<R>(&self, _app: AppId, f: impl FnOnce(&mut Arbiter) -> R) -> R {
        self.with(f)
    }

    /// Whether `app` currently holds end-to-end access to the file
    /// system. For a flat transport this is the arbiter's grant; a
    /// hierarchical transport additionally requires the application's
    /// machine to hold a shared-PFS slot.
    fn is_granted(&self, app: AppId) -> bool {
        self.with(|arb| arb.is_granted(app))
    }

    /// Total coordination messages exchanged so far — for a tree, the sum
    /// over every arbiter plus the cross-arbiter traffic.
    fn message_count(&self) -> u64 {
        self.with(|arb| arb.message_count())
    }

    /// The waiting applications that are granted end-to-end right now —
    /// the set a driver should wake. The default is the flat
    /// granted ∩ waiting intersection; serialising schedules keep the
    /// granted side tiny while thousands wait, overlap-heavy ones are the
    /// reverse, so the walk takes whichever side is smaller. Both sides
    /// iterate the same intersection in ascending id order, so the result
    /// — and therefore the simulation — does not depend on the side
    /// chosen.
    fn resumable(&self, waiting: &BTreeSet<AppId>) -> Vec<AppId> {
        self.with(|arb| {
            if arb.active_count() <= waiting.len() {
                arb.active()
                    .into_iter()
                    .filter(|app| waiting.contains(app))
                    .collect()
            } else {
                waiting
                    .iter()
                    .copied()
                    .filter(|app| arb.is_granted(*app))
                    .collect()
            }
        })
    }

    /// The next simulated time at which the transport itself has work to
    /// do (an in-flight cross-arbiter message arriving, a slot rotation
    /// falling due). `None` for flat transports: all their state changes
    /// happen inside driver-initiated visits.
    fn next_wakeup(&self) -> Option<SimTime> {
        None
    }

    /// Advances the transport's clock to `now`, delivers every
    /// cross-arbiter message that has arrived by then, and returns the
    /// waiting applications that became granted end-to-end as a result
    /// (the driver schedules their resume notifications). A no-op for
    /// flat transports.
    fn deliver_due(&self, _now: SimTime, _waiting: &BTreeSet<AppId>) -> Vec<AppId> {
        Vec::new()
    }
}

/// In-process, single-threaded transport (`Rc<RefCell<Arbiter>>`).
#[derive(Debug, Clone)]
pub struct LocalTransport {
    inner: Rc<RefCell<Arbiter>>,
}

impl CoordinationTransport for LocalTransport {
    fn new(arbiter: Arbiter) -> Self {
        LocalTransport {
            inner: Rc::new(RefCell::new(arbiter)),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Arbiter) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }
}

/// Thread-safe transport (`Arc<Mutex<Arbiter>>`): `Send + Sync`, so
/// coordinators and sessions built on it can move across threads.
#[derive(Debug, Clone)]
pub struct SharedTransport {
    inner: Arc<Mutex<Arbiter>>,
}

impl CoordinationTransport for SharedTransport {
    fn new(arbiter: Arbiter) -> Self {
        SharedTransport {
            inner: Arc::new(Mutex::new(arbiter)),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut Arbiter) -> R) -> R {
        // The arbiter is a plain state machine; a panic while holding the
        // lock cannot leave it half-updated in a way later calls would
        // misread, so a poisoned lock is still usable.
        f(&mut self.inner.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// Per-application facade over the CALCioM coordination protocol, exposing
/// the API of Section III-C of the paper over any
/// [`CoordinationTransport`].
///
/// A coordinator is *observable*: build it with
/// [`Coordinator::with_observer`] and every protocol decision (requests,
/// grants, interruptions, delay bounds) is streamed to the observer as
/// [`SimEvent`]s, stamped with the coordinator's clock (advanced by the
/// embedding driver through [`Coordinator::set_now`]). The default
/// observer is the zero-cost [`NullObserver`].
#[derive(Clone)]
pub struct Coordinator<T: CoordinationTransport = LocalTransport, O: SimObserver = NullObserver> {
    app: AppId,
    transport: T,
    prepared: Vec<IoInfo>,
    observer: O,
    now: SimTime,
    blocked: Option<Blocked>,
}

/// Why an observed coordinator is currently blocked (drives which grant
/// event a successful [`Coordinator::wait`] emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Queued in the arbiter since `inform()`.
    Queued,
    /// Preempted at a yield point.
    Interrupted,
}

impl<T: CoordinationTransport> Coordinator<T, NullObserver> {
    /// Creates the coordinator for application `app`, attached to the
    /// shared coordination state, with no observer.
    pub fn new(app: AppId, transport: T) -> Self {
        Coordinator::with_observer(app, transport, NullObserver)
    }
}

impl<T: CoordinationTransport, O: SimObserver> Coordinator<T, O> {
    /// Creates an observed coordinator: every protocol decision is
    /// streamed to `observer` (stamped with the clock set through
    /// [`Coordinator::set_now`]).
    pub fn with_observer(app: AppId, transport: T, observer: O) -> Self {
        Coordinator {
            app,
            transport,
            prepared: Vec::new(),
            observer,
            now: SimTime::ZERO,
            blocked: None,
        }
    }

    /// The application this coordinator speaks for.
    pub fn app(&self) -> AppId {
        self.app
    }

    /// The transport this coordinator communicates through.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Advances the coordinator's clock: subsequent observed events are
    /// stamped with `now`, and the shared [`Arbiter`]'s clock is advanced
    /// too, so time-aware arbitration policies (e.g. round-robin quanta)
    /// observe the driver's time. The clock never goes backwards.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
        let now = self.now;
        self.transport.with(|arb| arb.set_now(now));
    }

    /// The coordinator's current clock.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Consumes the coordinator, returning its observer (e.g. to take a
    /// recorded trace out).
    pub fn into_observer(self) -> O {
        self.observer
    }

    fn emit(&mut self, event: SimEvent) {
        self.observer.on_event(self.now, &event);
    }

    /// `Prepare(MPI_Info info)`: stacks information about the upcoming I/O
    /// accesses. A later [`Coordinator::complete`] unstacks it.
    pub fn prepare(&mut self, info: IoInfo) {
        self.prepared.push(info);
    }

    /// `Complete()`: unstacks the most recent prepared information.
    pub fn complete(&mut self) -> Option<IoInfo> {
        self.prepared.pop()
    }

    /// `Inform()`: sends the currently prepared information to the other
    /// running applications and registers this application's desire to
    /// access the file system. Returns the immediate outcome.
    ///
    /// Observed as [`SimEvent::AccessRequested`] followed by
    /// [`SimEvent::AccessGranted`] (immediate grant) or
    /// [`SimEvent::DelayBounded`] (bounded-delay refusal); a plain
    /// `MustWait` emits only the request — the grant is observed when
    /// [`Coordinator::wait`] later succeeds.
    pub fn inform(&mut self) -> AccessOutcome {
        let app = self.app;
        let info = self.prepared.last().cloned();
        self.emit(SimEvent::AccessRequested { app });
        let outcome = self.transport.with(|arb| {
            if let Some(info) = info {
                arb.update_info(info);
            }
            arb.request_access(app)
        });
        match outcome {
            AccessOutcome::Granted => {
                self.blocked = None;
                self.emit(SimEvent::AccessGranted {
                    app,
                    grant: GrantKind::Immediate,
                });
            }
            AccessOutcome::MustWait => self.blocked = Some(Blocked::Queued),
            AccessOutcome::MustWaitAtMost(secs) => {
                self.blocked = Some(Blocked::Queued);
                self.emit(SimEvent::DelayBounded {
                    app,
                    max_wait_secs: secs,
                });
            }
        }
        outcome
    }

    /// `Check(int* authorized)`: non-blocking query of whether this
    /// application is currently allowed to access the file system.
    ///
    /// A pure query: it does not conclude an observed wait. A driver that
    /// spins on `check` should call [`Coordinator::wait`] (or
    /// [`Coordinator::delay_elapsed`] on budget expiry) once it sees
    /// `true`, so the grant is emitted to the observer.
    pub fn check(&self) -> bool {
        self.transport.with(|arb| arb.is_granted(self.app))
    }

    /// Whether this application's access request is queued in the arbiter,
    /// waiting for a grant.
    pub fn pending(&self) -> bool {
        self.transport.with(|arb| arb.is_pending(self.app))
    }

    /// `Wait()`: in the paper this blocks until the other applications
    /// agree that this application should do its I/O. In the discrete-event
    /// reproduction, blocking is expressed by the caller re-invoking
    /// [`Coordinator::check`] as simulated time advances; `wait` therefore
    /// only reports whether the grant has arrived yet.
    ///
    /// **Pending-grant invariant**: a `wait` that returns `false` always
    /// corresponds to a request still queued in the arbiter — "not yet",
    /// never "lost". The grant is guaranteed to arrive once the current
    /// accessor(s) release or yield, so spinning on `check` terminates.
    /// Calling `wait` without a preceding [`Coordinator::inform`] is a
    /// protocol violation and trips a debug assertion.
    pub fn wait(&mut self) -> bool {
        let app = self.app;
        let granted = self.transport.with(|arb| {
            let granted = arb.is_granted(app);
            debug_assert!(
                granted || arb.is_pending(app),
                "wait() for {app} without a queued request: call inform() first"
            );
            granted
        });
        if granted {
            match self.blocked.take() {
                Some(Blocked::Queued) => self.emit(SimEvent::AccessGranted {
                    app,
                    grant: GrantKind::AfterWait,
                }),
                Some(Blocked::Interrupted) => self.emit(SimEvent::Resumed { app }),
                None => {}
            }
        }
        granted
    }

    /// Coordination point between two atomic accesses (the ADIO-level
    /// `Release(); Inform(); Check()` sequence): refreshes the shared
    /// information and asks whether the application should yield.
    /// Observed as [`SimEvent::Interrupted`] when the answer is
    /// [`YieldOutcome::YieldNow`]; the later re-grant surfaces as
    /// [`SimEvent::Resumed`] from the [`Coordinator::wait`] that sees it.
    pub fn yield_point(&mut self, refreshed: Option<IoInfo>) -> YieldOutcome {
        let app = self.app;
        let info = refreshed.or_else(|| self.prepared.last().cloned());
        let outcome = self.transport.with(|arb| {
            if let Some(info) = info {
                arb.update_info(info);
            }
            arb.yield_point(app)
        });
        if outcome == YieldOutcome::YieldNow {
            self.blocked = Some(Blocked::Interrupted);
            self.emit(SimEvent::Interrupted { app });
        }
        outcome
    }

    /// The bounded-delay budget announced by a
    /// [`SimEvent::DelayBounded`] answer has expired: ask the arbitration
    /// policy ([`Arbiter::delay_expired`]) whether to force the queued
    /// request through and proceed, overlapping the current accessor —
    /// the [`Strategy::Delay`](crate::Strategy) trade-off. Returns
    /// whether a pending request was actually forced (`false` when the
    /// grant had already arrived, nothing was pending, or the policy
    /// withdrew the promise and kept the request queued — in the last
    /// case the request *stays* pending and a later
    /// [`Coordinator::wait`] concludes it normally).
    ///
    /// Forcing goes through [`Arbiter::force_grant`], whose contract
    /// guarantees the queue entry is cleared along with the grant: the
    /// pending request is concluded and observed exactly once.
    ///
    /// Observed as [`SimEvent::AccessGranted`]: with
    /// [`GrantKind::DelayElapsed`] when the request really had to be
    /// forced — the same vocabulary [`Session`](crate::Session) uses when
    /// its internal delay timer fires — or with [`GrantKind::AfterWait`]
    /// when the arbiter had already handed the slot over within the
    /// budget (an ordinary queue handover the driver just had not
    /// observed yet).
    pub fn delay_elapsed(&mut self) -> bool {
        enum Outcome {
            AlreadyGranted,
            Forced,
            KeptWaiting,
        }
        let app = self.app;
        if self.blocked.is_none() {
            return false;
        }
        let outcome = self.transport.with(|arb| {
            if arb.is_granted(app) {
                Outcome::AlreadyGranted
            } else if arb.delay_expired(app) {
                Outcome::Forced
            } else {
                Outcome::KeptWaiting
            }
        });
        let grant = match outcome {
            // The policy kept the request queued: nothing to observe yet,
            // the pending-grant invariant still holds.
            Outcome::KeptWaiting => return false,
            Outcome::AlreadyGranted => GrantKind::AfterWait,
            Outcome::Forced => GrantKind::DelayElapsed,
        };
        self.blocked = None;
        self.emit(SimEvent::AccessGranted { app, grant });
        matches!(grant, GrantKind::DelayElapsed)
    }

    /// `Release()` at the end of the I/O phase: gives up the access slot,
    /// re-evaluates the global strategy and lets the next application in.
    pub fn release(&mut self) {
        let app = self.app;
        self.transport.with(|arb| arb.release(app));
    }
}

impl<T: CoordinationTransport, O: SimObserver> std::fmt::Debug for Coordinator<T, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Coordinator")
            .field("app", &self.app)
            .field("prepared", &self.prepared.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EfficiencyMetric;
    use crate::policy::DynamicPolicy;
    use crate::strategy::Strategy;
    use mpiio::Granularity;

    fn info(app: usize, procs: u32, total: f64, remaining: f64) -> IoInfo {
        IoInfo {
            app: AppId(app),
            procs,
            files_total: 1,
            rounds_total: 4,
            bytes_total: total * 1e9,
            bytes_remaining: remaining * 1e9,
            est_alone_total_secs: total,
            est_alone_remaining_secs: remaining,
            pfs_share: 1.0,
            granularity: Granularity::Round,
        }
    }

    fn arbiter(strategy: Strategy) -> Arbiter {
        Arbiter::new(
            strategy,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
    }

    fn pair(strategy: Strategy) -> (Coordinator, Coordinator) {
        let transport = LocalTransport::new(arbiter(strategy));
        (
            Coordinator::new(AppId(0), transport.clone()),
            Coordinator::new(AppId(1), transport),
        )
    }

    #[test]
    fn prepare_and_complete_stack_info() {
        let (mut a, _) = pair(Strategy::FcfsSerialize);
        assert!(a.complete().is_none());
        a.prepare(info(0, 64, 10.0, 10.0));
        a.prepare(info(0, 64, 10.0, 5.0));
        assert_eq!(a.complete().unwrap().est_alone_remaining_secs, 5.0);
        assert_eq!(a.complete().unwrap().est_alone_remaining_secs, 10.0);
        assert!(a.complete().is_none());
    }

    #[test]
    fn fcfs_protocol_through_the_api() {
        let (mut a, mut b) = pair(Strategy::FcfsSerialize);
        a.prepare(info(0, 336, 12.0, 12.0));
        assert_eq!(a.inform(), AccessOutcome::Granted);
        assert!(a.check());

        b.prepare(info(1, 336, 12.0, 12.0));
        assert_eq!(b.inform(), AccessOutcome::MustWait);
        assert!(!b.check());
        assert!(!b.wait());

        // A's mid-phase coordination points do not preempt it under FCFS.
        assert_eq!(a.yield_point(None), YieldOutcome::Continue);

        a.release();
        assert!(b.check(), "B is granted once A releases");
        assert!(b.wait());
    }

    #[test]
    fn interrupt_protocol_through_the_api() {
        let (mut a, mut b) = pair(Strategy::Interrupt);
        a.prepare(info(0, 2048, 28.0, 28.0));
        a.inform();
        b.prepare(info(1, 2048, 7.0, 7.0));
        assert_eq!(b.inform(), AccessOutcome::MustWait);

        // A discovers the interruption request at its next yield point and
        // refreshes its remaining-work information while doing so.
        assert_eq!(
            a.yield_point(Some(info(0, 2048, 28.0, 21.0))),
            YieldOutcome::YieldNow
        );
        assert!(!a.check());
        assert!(b.check());

        // When B releases, A is granted again and resumes.
        b.release();
        assert!(a.check());
        a.release();
    }

    #[test]
    fn pending_grant_invariant_false_wait_means_queued_request() {
        // The satellite invariant: whenever wait() reports false, the
        // request is still queued in the arbiter — it was parked, not
        // dropped — and releasing the accessor eventually grants it.
        for strategy in [
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
            Strategy::Delay { max_wait_secs: 5.0 },
        ] {
            let (mut a, mut b) = pair(strategy);
            a.prepare(info(0, 336, 12.0, 12.0));
            a.inform();
            b.prepare(info(1, 336, 12.0, 12.0));
            b.inform();
            if !b.wait() {
                assert!(
                    b.pending(),
                    "{strategy:?}: a false wait() must leave the request queued"
                );
                a.release();
                assert!(
                    b.wait(),
                    "{strategy:?}: the queued request must be granted on release"
                );
                assert!(!b.pending());
            }
        }
    }

    #[test]
    fn shared_transport_runs_the_protocol_across_threads() {
        // The same FCFS handshake, with each coordinator living on its own
        // thread — possible because SharedTransport (and thus the
        // coordinators built on it) is Send + Sync.
        let transport = SharedTransport::new(arbiter(Strategy::FcfsSerialize));
        let mut a = Coordinator::new(AppId(0), transport.clone());
        let mut b = Coordinator::new(AppId(1), transport);
        std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    a.prepare(info(0, 336, 12.0, 12.0));
                    assert_eq!(a.inform(), AccessOutcome::Granted);
                    a.release();
                })
                .join()
                .expect("coordinator thread");
            scope
                .spawn(move || {
                    b.prepare(info(1, 336, 12.0, 12.0));
                    assert_eq!(b.inform(), AccessOutcome::Granted);
                    b.release();
                })
                .join()
                .expect("coordinator thread");
        });
    }

    #[test]
    fn coordinator_is_debug_and_reports_app() {
        let (a, _) = pair(Strategy::Interfere);
        assert_eq!(a.app(), AppId(0));
        let dbg = format!("{a:?}");
        assert!(dbg.contains("Coordinator"));
    }

    #[test]
    fn delay_elapsed_forces_the_grant_and_reports_it() {
        let (mut a, mut b) = pair(Strategy::Delay { max_wait_secs: 2.0 });
        a.prepare(info(0, 336, 12.0, 12.0));
        assert_eq!(a.inform(), AccessOutcome::Granted);
        b.prepare(info(1, 336, 12.0, 12.0));
        assert_eq!(b.inform(), AccessOutcome::MustWaitAtMost(2.0));
        assert!(!b.wait());
        // The driver's budget timer fires: B proceeds, overlapping A.
        assert!(b.delay_elapsed());
        assert!(b.check() && a.check(), "both overlap after the budget");
        // Idempotent: nothing is pending the second time.
        assert!(!b.delay_elapsed());
        // Without a preceding refusal the call is a no-op.
        assert!(!a.delay_elapsed());
    }

    #[test]
    fn observed_coordinator_streams_the_protocol() {
        use simcore::observe::EventLog;

        /// Collects the coordination stream for inspection.
        #[derive(Default, Clone)]
        struct Collector(EventLog<SimEvent>);
        impl SimObserver for Collector {
            fn on_event(&mut self, at: SimTime, event: &SimEvent) {
                self.0.push(at, *event);
            }
        }

        let transport = LocalTransport::new(arbiter(Strategy::Interrupt));
        let mut a = Coordinator::with_observer(AppId(0), transport.clone(), Collector::default());
        let mut b = Coordinator::with_observer(AppId(1), transport, Collector::default());

        a.prepare(info(0, 2048, 28.0, 28.0));
        a.inform();
        b.set_now(SimTime::from_secs(2.0));
        b.prepare(info(1, 2048, 7.0, 7.0));
        assert_eq!(b.inform(), AccessOutcome::MustWait);
        assert!(!b.wait());

        a.set_now(SimTime::from_secs(3.0));
        assert_eq!(
            a.yield_point(Some(info(0, 2048, 28.0, 21.0))),
            YieldOutcome::YieldNow
        );
        b.set_now(SimTime::from_secs(3.0));
        assert!(b.wait(), "B granted after A yields");
        b.set_now(SimTime::from_secs(9.0));
        b.release();
        a.set_now(SimTime::from_secs(9.0));
        assert!(a.wait(), "A resumes after B releases");

        let kinds = |c: &Coordinator<LocalTransport, Collector>| -> Vec<&'static str> {
            c.observer().0.iter().map(|e| e.event.kind()).collect()
        };
        assert_eq!(
            kinds(&a),
            vec![
                "access-requested",
                "access-granted",
                "interrupted",
                "resumed"
            ]
        );
        assert_eq!(kinds(&b), vec!["access-requested", "access-granted"]);
        // Events carry the driver-advanced clock.
        let b_events = b.into_observer().0;
        assert_eq!(b_events.events()[0].time, SimTime::from_secs(2.0));
        assert_eq!(b_events.last_time(), Some(SimTime::from_secs(3.0)));
        // B's grant arrived after waiting, not immediately.
        assert!(matches!(
            b_events.events()[1].event,
            SimEvent::AccessGranted {
                grant: GrantKind::AfterWait,
                ..
            }
        ));
    }
}
