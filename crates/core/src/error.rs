//! Typed errors for the coordination layer and everything built on it.
//!
//! [`enum@Error`] is the single error surface of the `calciom` crate (and,
//! via re-export, of the `iobench` harness): configuration problems from
//! the substrate crates are wrapped into [`ConfigError`], runtime failures
//! of a simulation into [`SessionError`], and problems decoding a
//! serialized [`Scenario`](crate::Scenario) or an exchanged `MPI_Info`
//! payload into [`ScenarioParseError`] / [`InfoError`]. Every variant is
//! matchable — no caller ever needs to parse an error message.

use pfs::AppId;
use simcore::time::SimDuration;

/// A problem found while validating a scenario or one of its parts.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The file system configuration was invalid.
    Pfs(pfs::ConfigError),
    /// An application configuration was invalid.
    App(mpiio::ConfigError),
    /// The scenario had no applications at all.
    NoApplications,
    /// Two applications shared the same identifier.
    DuplicateApp(AppId),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Pfs(e) => write!(f, "file system configuration: {e}"),
            ConfigError::App(e) => write!(f, "application configuration: {e}"),
            ConfigError::NoApplications => {
                write!(f, "a scenario needs at least one application")
            }
            ConfigError::DuplicateApp(app) => write!(f, "duplicate application id {app}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Pfs(e) => Some(e),
            ConfigError::App(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pfs::ConfigError> for ConfigError {
    fn from(e: pfs::ConfigError) -> Self {
        ConfigError::Pfs(e)
    }
}

impl From<mpiio::ConfigError> for ConfigError {
    fn from(e: mpiio::ConfigError) -> Self {
        ConfigError::App(e)
    }
}

/// A failure while executing a simulation session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No events are pending but some application has not finished — a
    /// coordination deadlock (should be unreachable for valid scenarios).
    Deadlock {
        /// Human-readable dump of the per-application states.
        detail: String,
    },
    /// Simulated time exceeded the configured horizon (guards against
    /// configuration mistakes such as an unreachable bandwidth).
    HorizonExceeded {
        /// The horizon that was exceeded.
        horizon: SimDuration,
    },
    /// A report was requested for an application the session did not run.
    MissingApp(AppId),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Deadlock { detail } => {
                write!(
                    f,
                    "deadlock: no pending events but applications are not done (states: {detail})"
                )
            }
            SessionError::HorizonExceeded { horizon } => {
                write!(f, "simulation exceeded the configured horizon of {horizon}")
            }
            SessionError::MissingApp(app) => write!(f, "no report for application {app}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A problem decoding the textual form of a [`Scenario`](crate::Scenario).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioParseError {
    /// The document did not start with the expected header line.
    BadHeader,
    /// A line was not a section header or a `key = value` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown `[section]` header.
    UnknownSection(String),
    /// A key that does not belong to its section.
    UnknownKey(String),
    /// The same key appeared twice in one section.
    DuplicateKey(String),
    /// A required key was absent from its section.
    MissingKey(&'static str),
    /// A value could not be parsed.
    InvalidValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected text.
        value: String,
    },
}

impl std::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioParseError::BadHeader => {
                write!(f, "missing or unsupported scenario header")
            }
            ScenarioParseError::Malformed { line } => {
                write!(f, "line {line}: expected `key = value` or `[section]`")
            }
            ScenarioParseError::UnknownSection(s) => write!(f, "unknown section [{s}]"),
            ScenarioParseError::UnknownKey(k) => write!(f, "unknown key '{k}'"),
            ScenarioParseError::DuplicateKey(k) => write!(f, "duplicate key '{k}'"),
            ScenarioParseError::MissingKey(k) => write!(f, "missing key '{k}'"),
            ScenarioParseError::InvalidValue { key, value } => {
                write!(f, "invalid value for '{key}': {value}")
            }
        }
    }
}

impl std::error::Error for ScenarioParseError {}

/// A problem decoding the flat `(key, value)` representation of an
/// [`IoInfo`](crate::IoInfo) (the paper's `MPI_Info` payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfoError {
    /// A required key was absent.
    MissingKey(String),
    /// A value could not be parsed.
    InvalidValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected text.
        value: String,
    },
    /// An unknown granularity label.
    UnknownGranularity(String),
}

impl std::fmt::Display for InfoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoError::MissingKey(k) => write!(f, "missing key '{k}'"),
            InfoError::InvalidValue { key, value } => {
                write!(f, "invalid value for '{key}': {value}")
            }
            InfoError::UnknownGranularity(g) => write!(f, "unknown granularity '{g}'"),
        }
    }
}

impl std::error::Error for InfoError {}

/// The error type of every fallible public operation in the CALCioM stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A scenario (or one of its parts) failed validation.
    Config(ConfigError),
    /// A simulation session failed at runtime.
    Session(SessionError),
    /// A serialized scenario could not be decoded.
    Scenario(ScenarioParseError),
    /// An exchanged `MPI_Info` payload could not be decoded.
    Info(InfoError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config(e) => e.fmt(f),
            Error::Session(e) => e.fmt(f),
            Error::Scenario(e) => e.fmt(f),
            Error::Info(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Scenario(e) => Some(e),
            Error::Info(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<ScenarioParseError> for Error {
    fn from(e: ScenarioParseError) -> Self {
        Error::Scenario(e)
    }
}

impl From<InfoError> for Error {
    fn from(e: InfoError) -> Self {
        Error::Info(e)
    }
}

impl From<pfs::ConfigError> for Error {
    fn from(e: pfs::ConfigError) -> Self {
        Error::Config(ConfigError::Pfs(e))
    }
}

impl From<mpiio::ConfigError> for Error {
    fn from(e: mpiio::ConfigError) -> Self {
        Error::Config(ConfigError::App(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_wrapped_detail() {
        let e = Error::from(pfs::ConfigError::NoServers);
        assert!(e.to_string().contains("num_servers"));
        let e = Error::from(ConfigError::DuplicateApp(AppId(3)));
        assert!(e.to_string().contains("app3"));
        let e = Error::from(SessionError::HorizonExceeded {
            horizon: SimDuration::from_secs(10.0),
        });
        assert!(e.to_string().contains("horizon"));
    }

    #[test]
    fn sources_chain_to_the_substrate_error() {
        use std::error::Error as _;
        let e = Error::from(mpiio::ConfigError::ZeroBlockCount);
        assert!(e.source().is_some());
        assert!(e.source().unwrap().source().is_some());
    }
}
