//! Typed errors for the coordination layer and everything built on it.
//!
//! [`enum@Error`] is the single error surface of the `calciom` crate (and,
//! via re-export, of the `iobench` harness): configuration problems from
//! the substrate crates are wrapped into [`ConfigError`], runtime failures
//! of a simulation into [`SessionError`], and problems decoding a
//! serialized [`Scenario`](crate::Scenario), a recorded
//! [`Trace`](crate::Trace), or an exchanged `MPI_Info` payload into
//! [`ScenarioParseError`] / [`TraceParseError`] / [`InfoError`]. Every
//! variant is matchable — no caller ever needs to parse an error message.

use crate::arbitration::PolicyError;
use pfs::{AppId, TransferId};
use simcore::time::SimDuration;

/// A problem found while validating a scenario or one of its parts.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The file system configuration was invalid.
    Pfs(pfs::ConfigError),
    /// An application configuration was invalid.
    App(mpiio::ConfigError),
    /// The scenario had no applications at all.
    NoApplications,
    /// Two applications shared the same identifier.
    DuplicateApp(AppId),
    /// The scenario named an arbitration policy the registry could not
    /// resolve or instantiate.
    Policy(PolicyError),
    /// The scenario's cluster topology was invalid.
    Cluster(ClusterConfigError),
    /// The scenario carries a cluster topology but the session was built
    /// on a flat (single-arbiter) transport that would silently ignore
    /// it; run it through a cluster-aware transport instead.
    ClusterUnsupported,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Pfs(e) => write!(f, "file system configuration: {e}"),
            ConfigError::App(e) => write!(f, "application configuration: {e}"),
            ConfigError::NoApplications => {
                write!(f, "a scenario needs at least one application")
            }
            ConfigError::DuplicateApp(app) => write!(f, "duplicate application id {app}"),
            ConfigError::Policy(e) => write!(f, "arbitration policy: {e}"),
            ConfigError::Cluster(e) => write!(f, "cluster topology: {e}"),
            ConfigError::ClusterUnsupported => {
                write!(
                    f,
                    "scenario has a cluster topology but the transport is flat; \
                     use a cluster-aware transport (e.g. ClusterTransport)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Pfs(e) => Some(e),
            ConfigError::App(e) => Some(e),
            ConfigError::Policy(e) => Some(e),
            ConfigError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

/// A problem found while validating a scenario's cluster topology
/// ([`ClusterSpec`](crate::ClusterSpec)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterConfigError {
    /// The topology listed no machines.
    NoMachines,
    /// The root arbiter was given zero shared-PFS slots.
    NoSlots,
    /// A scenario application was assigned to no machine.
    UnassignedApp(AppId),
    /// An application was assigned to more than one machine (or twice to
    /// the same machine).
    DuplicateAssignment(AppId),
    /// A machine listed an application the scenario does not run.
    UnknownApp(AppId),
}

impl std::fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterConfigError::NoMachines => {
                write!(f, "a cluster needs at least one machine")
            }
            ClusterConfigError::NoSlots => {
                write!(f, "the root arbiter needs at least one shared-PFS slot")
            }
            ClusterConfigError::UnassignedApp(app) => {
                write!(f, "application {app} is assigned to no machine")
            }
            ClusterConfigError::DuplicateAssignment(app) => {
                write!(f, "application {app} is assigned to more than one machine")
            }
            ClusterConfigError::UnknownApp(app) => {
                write!(f, "machine lists unknown application {app}")
            }
        }
    }
}

impl std::error::Error for ClusterConfigError {}

impl From<ClusterConfigError> for ConfigError {
    fn from(e: ClusterConfigError) -> Self {
        ConfigError::Cluster(e)
    }
}

impl From<ClusterConfigError> for Error {
    fn from(e: ClusterConfigError) -> Self {
        Error::Config(ConfigError::Cluster(e))
    }
}

impl From<PolicyError> for ConfigError {
    fn from(e: PolicyError) -> Self {
        ConfigError::Policy(e)
    }
}

impl From<pfs::ConfigError> for ConfigError {
    fn from(e: pfs::ConfigError) -> Self {
        ConfigError::Pfs(e)
    }
}

impl From<mpiio::ConfigError> for ConfigError {
    fn from(e: mpiio::ConfigError) -> Self {
        ConfigError::App(e)
    }
}

/// The run state of one application inside a session, as reported by
/// deadlock diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppRunState {
    /// Waiting for the scheduled start of the next phase.
    Idle,
    /// Requested access at phase start; waiting to be granted.
    WantAccess,
    /// Yielded mid-phase after an interruption request; waiting to resume.
    Parked,
    /// A communication (shuffle) step is in flight.
    Comm,
    /// A write transfer is in flight.
    Writing,
    /// All phases completed.
    Done,
}

impl AppRunState {
    /// Stable, greppable label.
    pub fn label(&self) -> &'static str {
        match self {
            AppRunState::Idle => "idle",
            AppRunState::WantAccess => "want-access",
            AppRunState::Parked => "parked",
            AppRunState::Comm => "comm",
            AppRunState::Writing => "writing",
            AppRunState::Done => "done",
        }
    }

    /// The event the application is waiting for in this state — the
    /// "pending event" column of a deadlock report.
    pub fn pending_event(&self) -> &'static str {
        match self {
            AppRunState::Idle => "phase-start",
            AppRunState::WantAccess => "grant",
            AppRunState::Parked => "resume",
            AppRunState::Comm => "comm-completion",
            AppRunState::Writing => "transfer-completion",
            AppRunState::Done => "nothing",
        }
    }
}

impl std::fmt::Display for AppRunState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One application's situation at the moment a deadlock was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlockApp {
    /// The application.
    pub app: AppId,
    /// Its run state.
    pub state: AppRunState,
    /// Whether the arbiter currently counts it as an accessor.
    pub granted: bool,
}

impl std::fmt::Display for DeadlockApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} state={} pending={} granted={}",
            self.app,
            self.state,
            self.state.pending_event(),
            if self.granted { "yes" } else { "no" }
        )
    }
}

/// A failure while executing a simulation session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// No events are pending but some application has not finished — a
    /// coordination deadlock (should be unreachable for valid scenarios).
    Deadlock {
        /// The situation of every unfinished application, in id order.
        apps: Vec<DeadlockApp>,
    },
    /// Simulated time exceeded the configured horizon (guards against
    /// configuration mistakes such as an unreachable bandwidth).
    HorizonExceeded {
        /// The horizon that was exceeded.
        horizon: SimDuration,
    },
    /// A report was requested for an application the session did not run.
    MissingApp(AppId),
    /// One or more in-flight transfers sit at zero bandwidth with no
    /// pending event that could ever raise it — the flows are starved
    /// (e.g. by a zero-capacity constraint) and the session would never
    /// advance. Distinguished from [`SessionError::Deadlock`] so a
    /// mis-sized file system surfaces as "starved transfer", not as a
    /// coordination bug.
    StalledTransfer {
        /// The starved transfers as `(owner, transfer)`, in id order.
        transfers: Vec<(AppId, TransferId)>,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Deadlock { apps } => {
                write!(
                    f,
                    "deadlock: no pending events but applications are not done ["
                )?;
                for (i, app) in apps.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{app}")?;
                }
                write!(f, "]")
            }
            SessionError::HorizonExceeded { horizon } => {
                write!(f, "simulation exceeded the configured horizon of {horizon}")
            }
            SessionError::MissingApp(app) => write!(f, "no report for application {app}"),
            SessionError::StalledTransfer { transfers } => {
                write!(
                    f,
                    "stalled: transfers at zero bandwidth with no way to progress ["
                )?;
                for (i, (app, tid)) in transfers.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{app} transfer={}", tid.0)?;
                }
                write!(f, "]")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A problem decoding the textual form of a [`Scenario`](crate::Scenario).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioParseError {
    /// The document did not start with the expected header line.
    BadHeader,
    /// A line was not a section header or a `key = value` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown `[section]` header.
    UnknownSection(String),
    /// A key that does not belong to its section.
    UnknownKey(String),
    /// The same key appeared twice in one section.
    DuplicateKey(String),
    /// A required key was absent from its section.
    MissingKey(&'static str),
    /// A value could not be parsed.
    InvalidValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected text.
        value: String,
    },
}

impl std::fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioParseError::BadHeader => {
                write!(f, "missing or unsupported scenario header")
            }
            ScenarioParseError::Malformed { line } => {
                write!(f, "line {line}: expected `key = value` or `[section]`")
            }
            ScenarioParseError::UnknownSection(s) => write!(f, "unknown section [{s}]"),
            ScenarioParseError::UnknownKey(k) => write!(f, "unknown key '{k}'"),
            ScenarioParseError::DuplicateKey(k) => write!(f, "duplicate key '{k}'"),
            ScenarioParseError::MissingKey(k) => write!(f, "missing key '{k}'"),
            ScenarioParseError::InvalidValue { key, value } => {
                write!(f, "invalid value for '{key}': {value}")
            }
        }
    }
}

impl std::error::Error for ScenarioParseError {}

/// A problem decoding the flat `(key, value)` representation of an
/// [`IoInfo`](crate::IoInfo) (the paper's `MPI_Info` payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InfoError {
    /// A required key was absent.
    MissingKey(String),
    /// A value could not be parsed.
    InvalidValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected text.
        value: String,
    },
    /// An unknown granularity label.
    UnknownGranularity(String),
}

impl std::fmt::Display for InfoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InfoError::MissingKey(k) => write!(f, "missing key '{k}'"),
            InfoError::InvalidValue { key, value } => {
                write!(f, "invalid value for '{key}': {value}")
            }
            InfoError::UnknownGranularity(g) => write!(f, "unknown granularity '{g}'"),
        }
    }
}

impl std::error::Error for InfoError {}

/// A problem decoding the textual form of a [`Trace`](crate::Trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The document did not start with the expected header line.
    BadHeader,
    /// A line was not a section header, a `key = value` pair, or (inside
    /// `[events]`) an event record.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown `[section]` header.
    UnknownSection(String),
    /// A key that does not belong to its section.
    UnknownKey(String),
    /// The same key appeared twice in one section.
    DuplicateKey(String),
    /// A required key was absent from its section.
    MissingKey(&'static str),
    /// A value could not be parsed.
    InvalidValue {
        /// The key whose value was rejected.
        key: String,
        /// The rejected text.
        value: String,
    },
    /// An event record named a kind the codec does not know.
    UnknownEvent {
        /// 1-based line number.
        line: usize,
        /// The unknown kind token.
        kind: String,
    },
    /// An event record had the wrong number or shape of arguments.
    BadEvent {
        /// 1-based line number.
        line: usize,
    },
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceParseError::BadHeader => write!(f, "missing or unsupported trace header"),
            TraceParseError::Malformed { line } => {
                write!(
                    f,
                    "line {line}: expected `key = value`, `[section]` or an event record"
                )
            }
            TraceParseError::UnknownSection(s) => write!(f, "unknown section [{s}]"),
            TraceParseError::UnknownKey(k) => write!(f, "unknown key '{k}'"),
            TraceParseError::DuplicateKey(k) => write!(f, "duplicate key '{k}'"),
            TraceParseError::MissingKey(k) => write!(f, "missing key '{k}'"),
            TraceParseError::InvalidValue { key, value } => {
                write!(f, "invalid value for '{key}': {value}")
            }
            TraceParseError::UnknownEvent { line, kind } => {
                write!(f, "line {line}: unknown event kind '{kind}'")
            }
            TraceParseError::BadEvent { line } => {
                write!(f, "line {line}: malformed event record")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// The error type of every fallible public operation in the CALCioM stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A scenario (or one of its parts) failed validation.
    Config(ConfigError),
    /// A simulation session failed at runtime.
    Session(SessionError),
    /// A serialized scenario could not be decoded.
    Scenario(ScenarioParseError),
    /// An exchanged `MPI_Info` payload could not be decoded.
    Info(InfoError),
    /// A serialized trace could not be decoded.
    Trace(TraceParseError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Config(e) => e.fmt(f),
            Error::Session(e) => e.fmt(f),
            Error::Scenario(e) => e.fmt(f),
            Error::Info(e) => e.fmt(f),
            Error::Trace(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Session(e) => Some(e),
            Error::Scenario(e) => Some(e),
            Error::Info(e) => Some(e),
            Error::Trace(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<SessionError> for Error {
    fn from(e: SessionError) -> Self {
        Error::Session(e)
    }
}

impl From<ScenarioParseError> for Error {
    fn from(e: ScenarioParseError) -> Self {
        Error::Scenario(e)
    }
}

impl From<InfoError> for Error {
    fn from(e: InfoError) -> Self {
        Error::Info(e)
    }
}

impl From<TraceParseError> for Error {
    fn from(e: TraceParseError) -> Self {
        Error::Trace(e)
    }
}

impl From<pfs::ConfigError> for Error {
    fn from(e: pfs::ConfigError) -> Self {
        Error::Config(ConfigError::Pfs(e))
    }
}

impl From<mpiio::ConfigError> for Error {
    fn from(e: mpiio::ConfigError) -> Self {
        Error::Config(ConfigError::App(e))
    }
}

impl From<PolicyError> for Error {
    fn from(e: PolicyError) -> Self {
        Error::Config(ConfigError::Policy(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_the_wrapped_detail() {
        let e = Error::from(pfs::ConfigError::NoServers);
        assert!(e.to_string().contains("num_servers"));
        let e = Error::from(ConfigError::DuplicateApp(AppId(3)));
        assert!(e.to_string().contains("app3"));
        let e = Error::from(SessionError::HorizonExceeded {
            horizon: SimDuration::from_secs(10.0),
        });
        assert!(e.to_string().contains("horizon"));
    }

    #[test]
    fn sources_chain_to_the_substrate_error() {
        use std::error::Error as _;
        let e = Error::from(mpiio::ConfigError::ZeroBlockCount);
        assert!(e.source().is_some());
        assert!(e.source().unwrap().source().is_some());
    }

    #[test]
    fn deadlock_message_is_structured_and_greppable() {
        let e = SessionError::Deadlock {
            apps: vec![
                DeadlockApp {
                    app: AppId(0),
                    state: AppRunState::WantAccess,
                    granted: false,
                },
                DeadlockApp {
                    app: AppId(1),
                    state: AppRunState::Writing,
                    granted: true,
                },
            ],
        };
        // The rendering is stable: one `<app> state=<s> pending=<e>
        // granted=<yes|no>` clause per application, `;`-separated.
        assert_eq!(
            e.to_string(),
            "deadlock: no pending events but applications are not done \
             [app0 state=want-access pending=grant granted=no; \
             app1 state=writing pending=transfer-completion granted=yes]"
        );
    }

    #[test]
    fn stalled_transfer_message_is_structured_and_greppable() {
        let e = SessionError::StalledTransfer {
            transfers: vec![(AppId(0), TransferId(3)), (AppId(1), TransferId(7))],
        };
        assert_eq!(
            e.to_string(),
            "stalled: transfers at zero bandwidth with no way to progress \
             [app0 transfer=3; app1 transfer=7]"
        );
    }

    #[test]
    fn run_state_labels_and_pending_events_are_distinct() {
        let states = [
            AppRunState::Idle,
            AppRunState::WantAccess,
            AppRunState::Parked,
            AppRunState::Comm,
            AppRunState::Writing,
            AppRunState::Done,
        ];
        let labels: std::collections::BTreeSet<&str> = states.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), states.len());
        for s in states {
            assert!(!s.pending_event().is_empty());
        }
    }

    #[test]
    fn trace_parse_error_displays_its_location() {
        let e = Error::from(TraceParseError::UnknownEvent {
            line: 12,
            kind: "warp".into(),
        });
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("warp"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
