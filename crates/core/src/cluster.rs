//! Hierarchical multi-machine arbitration: an arbiter tree over a shared
//! parallel file system.
//!
//! The paper coordinates applications sharing *one* machine's I/O system;
//! real centers run many machines against one shared PFS. This module
//! generalizes the coordination layer to a two-level tree:
//!
//! * **Leaves** — one full [`Arbiter`] per machine (mechanism engine +
//!   pluggable policy, exactly the flat code path). Applications only ever
//!   talk to their own machine's leaf, so [`Session`](crate::Session) and
//!   the policy layer run unchanged.
//! * **Root** — owns a fixed number of shared-PFS bandwidth *slots*. A
//!   machine whose leaf has admitted work but that holds no slot
//!   *escalates* to the root; the root grants a free slot or queues the
//!   machine FIFO. Escalations piggyback an aggregated per-machine
//!   [`MachineLoad`] rollup of the leaf's shared [`IoInfo`](crate::IoInfo) — per-machine
//!   aggregates cross the tree, never per-application fan-in.
//!
//! Cross-arbiter messages (escalation, grant, slot return) travel with a
//! **modeled simulated-time latency**, configurable per machine edge: a
//! grant issued by the root at `t` lands on machine `m` at
//! `t + latency(m)`, and only then do the machine's applications become
//! granted end-to-end. The in-flight message queue is surfaced to the
//! driver through [`CoordinationTransport::next_wakeup`] /
//! [`CoordinationTransport::deliver_due`].
//!
//! **Starvation freedom** comes from two mechanisms: the root queue is
//! FIFO, and a machine holding a slot while others queue is *revoked*
//! after a rotation quantum ([`ClusterSpec::quantum`]) — it re-escalates
//! at the back of the queue if it still has work. A machine that goes
//! idle returns its slot as soon as anyone is queued.
//!
//! **Exactness envelope**: a 1-machine cluster never escalates (its slot
//! is assigned at construction and the root queue stays empty), so its
//! schedule — and its golden trace hash — is bit-identical to the flat
//! arbiter's. Slot revocation never interrupts an I/O step already in
//! flight; it only gates *future* grants, mirroring how the flat arbiter
//! only takes decisions at coordination points.

use crate::api::CoordinationTransport;
use crate::arbiter::Arbiter;
use crate::error::{ClusterConfigError, ConfigError, ScenarioParseError};
use crate::scenario::{invalid, Scenario};
use pfs::AppId;
use serde::{Deserialize, Serialize};
use simcore::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

/// Default slot-rotation quantum: how long a machine may hold a
/// shared-PFS slot while other machines are queued at the root.
pub const DEFAULT_QUANTUM: SimDuration = SimDuration::from_ticks(30_000_000);

/// Topology of a hierarchical cluster: how many shared-PFS slots the root
/// arbiter owns and which applications run on which machine.
///
/// Carried by [`Scenario::cluster`]; a scenario without one runs the flat,
/// single-arbiter code path. Encoded as the optional `cluster =` key of
/// the scenario text codec (see [`ClusterSpec::to_text`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of shared-PFS bandwidth slots the root arbiter owns —
    /// machines holding a slot may let their applications do I/O.
    pub slots: u32,
    /// Rotation quantum: a machine holding a slot while others are queued
    /// is revoked after this long and re-escalates at the back of the
    /// FIFO (the starvation-freedom bound).
    pub quantum: SimDuration,
    /// The machines, in machine-index order.
    pub machines: Vec<MachineSpec>,
}

/// One machine of a [`ClusterSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// One-way cross-arbiter message latency between this machine's leaf
    /// and the root (escalations travel up with it, grants down with it).
    pub latency: SimDuration,
    /// The applications assigned to this machine.
    pub apps: Vec<AppId>,
}

impl ClusterSpec {
    /// Creates a spec with the default rotation quantum
    /// ([`DEFAULT_QUANTUM`]).
    pub fn new(slots: u32, machines: Vec<MachineSpec>) -> Self {
        ClusterSpec {
            slots,
            quantum: DEFAULT_QUANTUM,
            machines,
        }
    }

    /// Serializes the spec as the single-line value of the scenario
    /// codec's `cluster =` key, e.g.
    /// `slots=1 quantum_ticks=30000000 machine lat_ticks=2000 apps=0,1 machine lat_ticks=0 apps=2`.
    /// Integer ticks only, so the encoding round-trips exactly.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "slots={} quantum_ticks={}",
            self.slots,
            self.quantum.ticks()
        );
        for machine in &self.machines {
            out.push_str(&format!(
                " machine lat_ticks={} apps={}",
                machine.latency.ticks(),
                machine
                    .apps
                    .iter()
                    .map(|a| a.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out
    }

    /// Parses the encoding produced by [`ClusterSpec::to_text`].
    pub fn from_text(text: &str) -> Result<ClusterSpec, ScenarioParseError> {
        /// Pops the next token and unwraps its `name=` prefix.
        fn field<'a>(
            tokens: &mut impl Iterator<Item = &'a str>,
            name: &str,
            full: &str,
        ) -> Result<String, ScenarioParseError> {
            tokens
                .next()
                .and_then(|t| t.strip_prefix(name))
                .and_then(|t| t.strip_prefix('='))
                .map(str::to_string)
                .ok_or_else(|| invalid("cluster", full))
        }
        let bad = || invalid::<ScenarioParseError>("cluster", text);
        let mut tokens = text.split_whitespace().peekable();
        let slots: u32 = field(&mut tokens, "slots", text)?
            .parse()
            .map_err(|_| bad())?;
        let quantum = SimDuration::from_ticks(
            field(&mut tokens, "quantum_ticks", text)?
                .parse()
                .map_err(|_| bad())?,
        );
        let mut machines = Vec::new();
        while tokens.peek().is_some() {
            if tokens.next() != Some("machine") {
                return Err(bad());
            }
            let latency = SimDuration::from_ticks(
                field(&mut tokens, "lat_ticks", text)?
                    .parse()
                    .map_err(|_| bad())?,
            );
            let apps_field = field(&mut tokens, "apps", text)?;
            let apps = if apps_field.is_empty() {
                Vec::new()
            } else {
                apps_field
                    .split(',')
                    .map(|t| t.parse().map(AppId).map_err(|_| bad()))
                    .collect::<Result<Vec<_>, _>>()?
            };
            machines.push(MachineSpec { latency, apps });
        }
        Ok(ClusterSpec {
            slots,
            quantum,
            machines,
        })
    }

    /// Validates the topology against the scenario's application list:
    /// every application must be assigned to exactly one machine, no
    /// machine may list an unknown application, and the tree needs at
    /// least one machine and one slot.
    pub fn validate(
        &self,
        apps: impl IntoIterator<Item = AppId>,
    ) -> Result<(), ClusterConfigError> {
        if self.machines.is_empty() {
            return Err(ClusterConfigError::NoMachines);
        }
        if self.slots == 0 {
            return Err(ClusterConfigError::NoSlots);
        }
        let known: BTreeSet<AppId> = apps.into_iter().collect();
        let mut assigned = BTreeSet::new();
        for machine in &self.machines {
            for &app in &machine.apps {
                if !known.contains(&app) {
                    return Err(ClusterConfigError::UnknownApp(app));
                }
                if !assigned.insert(app) {
                    return Err(ClusterConfigError::DuplicateAssignment(app));
                }
            }
        }
        if let Some(&orphan) = known.difference(&assigned).next() {
            return Err(ClusterConfigError::UnassignedApp(orphan));
        }
        Ok(())
    }

    /// Application → machine-index routing table.
    fn machine_of(&self) -> BTreeMap<AppId, usize> {
        let mut map = BTreeMap::new();
        for (m, machine) in self.machines.iter().enumerate() {
            for &app in &machine.apps {
                map.insert(app, m);
            }
        }
        map
    }
}

/// Aggregated per-machine load rollup — the *only* information a leaf
/// shares with the root (the IoInfo aggregation contract: per-machine
/// sums cross the tree, never per-application records). Snapshotted from
/// the leaf's shared [`crate::IoInfo`] at escalation time and piggybacked
/// on the escalation message, so the exchange costs no extra messages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MachineLoad {
    /// Applications that have shared information on this machine.
    pub apps: u32,
    /// Total processes behind them.
    pub procs: u64,
    /// Total bytes they still intend to write.
    pub bytes_remaining: f64,
    /// Sum of their estimated remaining stand-alone I/O times (seconds).
    pub est_alone_remaining_secs: f64,
}

impl MachineLoad {
    /// Rolls up a leaf arbiter's shared information.
    fn aggregate(leaf: &Arbiter) -> MachineLoad {
        let mut load = MachineLoad::default();
        for info in leaf.infos() {
            load.apps += 1;
            load.procs += u64::from(info.procs);
            load.bytes_remaining += info.bytes_remaining;
            load.est_alone_remaining_secs += info.est_alone_remaining_secs;
        }
        load
    }
}

/// Message-accounting snapshot of a [`ClusterTransport`] — the quantities
/// the flat-vs-hierarchical cost study (`fig15_cluster`) compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Number of machines in the tree.
    pub machines: usize,
    /// Shared-PFS slots the root owns.
    pub slots: u32,
    /// Leaf → root slot requests (each carries one [`MachineLoad`]).
    pub escalations: u64,
    /// Root → leaf slot grants.
    pub root_grants: u64,
    /// Leaf → root slot returns (idle hand-backs and quantum revocations).
    pub slot_returns: u64,
    /// Sum of the per-leaf protocol messages (the flat-arbiter count each
    /// machine would report on its own).
    pub leaf_messages: u64,
}

impl ClusterStats {
    /// Messages that crossed the tree: exactly one per escalation, grant
    /// and return — *exactly linear* in the number of escalations (each
    /// escalation triggers at most one grant, each grant at most one
    /// later return), never per-application fan-in.
    pub fn root_messages(&self) -> u64 {
        self.escalations + self.root_grants + self.slot_returns
    }

    /// Leaf plus cross-arbiter messages — what
    /// [`CoordinationTransport::message_count`] reports for the tree.
    pub fn total_messages(&self) -> u64 {
        self.leaf_messages + self.root_messages()
    }
}

/// Where a machine stands with respect to a shared-PFS slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Holds no slot and asked for none.
    Idle,
    /// Escalation in flight towards the root.
    Requesting,
    /// Escalation arrived; the machine is queued FIFO at the root.
    Queued,
    /// The root granted a slot; the grant message is still in flight.
    GrantInFlight,
    /// Holds a slot — its leaf's grants are end-to-end.
    Holding,
}

/// An in-flight cross-arbiter message (the key of the delivery queue is
/// its arrival time plus a send sequence number, so delivery order is
/// deterministic).
#[derive(Debug, Clone, Copy)]
enum Msg {
    /// A machine's slot request reaches the root (with its load rollup).
    Escalation(usize, MachineLoad),
    /// A returned slot reaches the root.
    SlotReturn,
    /// A slot grant reaches its machine.
    SlotGrant(usize),
}

/// The whole tree, behind the transport's one lock.
#[derive(Debug)]
struct ClusterState {
    /// One leaf arbiter per machine (same policy, independent state).
    leaves: Vec<Arbiter>,
    /// Application → machine index. Applications missing from the map
    /// (possible only for the degenerate single-machine transport built by
    /// [`CoordinationTransport::new`]) route to machine 0.
    machine_of: BTreeMap<AppId, usize>,
    /// One-way message latency per machine edge.
    latency: Vec<SimDuration>,
    /// Rotation quantum (see [`ClusterSpec::quantum`]).
    quantum: SimDuration,
    slot_state: Vec<SlotState>,
    /// When each currently-Holding machine received its slot.
    hold_since: Vec<SimTime>,
    /// Latest load rollup each machine escalated.
    loads: Vec<MachineLoad>,
    /// Total shared-PFS slots the root owns (configuration, for stats).
    slots: u32,
    free_slots: u32,
    /// Machines queued at the root, FIFO.
    root_queue: VecDeque<usize>,
    /// In-flight messages, keyed by (arrival time, send sequence).
    in_flight: BTreeMap<(SimTime, u64), Msg>,
    seq: u64,
    escalations: u64,
    root_grants: u64,
    slot_returns: u64,
    /// The tree's clock: the max of every driver-visible instant so far.
    now: SimTime,
}

impl ClusterState {
    fn build(machines: usize, slots: u32, quantum: SimDuration, arbiter: Arbiter) -> ClusterState {
        let held = machines.min(slots as usize);
        let mut leaves = Vec::with_capacity(machines);
        for _ in 1..machines {
            leaves.push(arbiter.clone());
        }
        leaves.insert(0, arbiter);
        ClusterState {
            leaves,
            machine_of: BTreeMap::new(),
            latency: vec![SimDuration::ZERO; machines],
            quantum,
            // The first `min(slots, machines)` machines hold a slot from
            // the start — with one machine the root is therefore never
            // consulted and the tree is bit-identical to the flat arbiter.
            slot_state: (0..machines)
                .map(|m| {
                    if m < held {
                        SlotState::Holding
                    } else {
                        SlotState::Idle
                    }
                })
                .collect(),
            hold_since: vec![SimTime::ZERO; machines],
            loads: vec![MachineLoad::default(); machines],
            slots,
            free_slots: slots - held as u32,
            root_queue: VecDeque::new(),
            in_flight: BTreeMap::new(),
            seq: 0,
            escalations: 0,
            root_grants: 0,
            slot_returns: 0,
            now: SimTime::ZERO,
        }
    }

    fn machine(&self, app: AppId) -> usize {
        self.machine_of.get(&app).copied().unwrap_or(0)
    }

    /// Whether `app` is granted *end-to-end*: its machine holds a
    /// shared-PFS slot and its leaf arbiter granted it.
    fn granted(&self, app: AppId) -> bool {
        let m = self.machine(app);
        self.slot_state[m] == SlotState::Holding && self.leaves[m].is_granted(app)
    }

    fn send(&mut self, at: SimTime, msg: Msg) {
        self.seq += 1;
        self.in_flight.insert((at, self.seq), msg);
    }

    /// Sends a slot grant for machine `m`, issued by the root at `at`.
    fn grant_slot(&mut self, m: usize, at: SimTime) {
        self.free_slots -= 1;
        self.root_grants += 1;
        self.slot_state[m] = SlotState::GrantInFlight;
        self.send(at + self.latency[m], Msg::SlotGrant(m));
    }

    /// Delivers every in-flight message that has arrived by `now` and
    /// performs due quantum rotations. Returns whether any message was
    /// delivered (i.e. whether a waiting application may have become
    /// granted end-to-end).
    fn pump(&mut self, now: SimTime) -> bool {
        self.now = self.now.max(now);
        let mut delivered = false;
        while let Some((&key, &msg)) = self.in_flight.first_key_value() {
            if key.0 > self.now {
                break;
            }
            let at = key.0;
            self.in_flight.remove(&key);
            delivered = true;
            match msg {
                Msg::Escalation(m, load) => {
                    self.escalations += 1;
                    self.loads[m] = load;
                    if self.slot_state[m] != SlotState::Requesting {
                        // The request was obsoleted in flight (e.g. the
                        // machine went idle and reconciliation cleared it).
                        continue;
                    }
                    if self.free_slots > 0 {
                        self.grant_slot(m, at);
                    } else {
                        self.slot_state[m] = SlotState::Queued;
                        self.root_queue.push_back(m);
                    }
                }
                Msg::SlotReturn => {
                    self.slot_returns += 1;
                    self.free_slots += 1;
                    if let Some(m) = self.root_queue.pop_front() {
                        self.grant_slot(m, at);
                    }
                }
                Msg::SlotGrant(m) => {
                    self.slot_state[m] = SlotState::Holding;
                    self.hold_since[m] = at;
                }
            }
        }
        // Quantum rotation: a machine holding a slot while others queue
        // is revoked once its quantum elapses; reconciliation re-escalates
        // it (at the back of the FIFO) if it still has work.
        for m in 0..self.leaves.len() {
            if self.slot_state[m] == SlotState::Holding
                && !self.root_queue.is_empty()
                && self.now >= self.hold_since[m] + self.quantum
            {
                self.revoke(m);
            }
        }
        delivered
    }

    /// Takes machine `m`'s slot away and sends the return towards the
    /// root (it arrives `latency(m)` later).
    fn revoke(&mut self, m: usize) {
        self.slot_state[m] = SlotState::Idle;
        let at = self.now + self.latency[m];
        self.send(at, Msg::SlotReturn);
    }

    /// Brings machine `m`'s slot state in line with its leaf's workload:
    /// escalate when the leaf has admitted work but holds no slot, hand
    /// the slot back when the leaf went idle while others are queued.
    fn reconcile(&mut self, m: usize) {
        let busy = self.leaves[m].active_count() > 0 || self.leaves[m].parked_count() > 0;
        match self.slot_state[m] {
            SlotState::Idle if busy => {
                self.slot_state[m] = SlotState::Requesting;
                let load = MachineLoad::aggregate(&self.leaves[m]);
                let at = self.now + self.latency[m];
                self.send(at, Msg::Escalation(m, load));
            }
            SlotState::Holding if !busy && !self.root_queue.is_empty() => {
                self.revoke(m);
            }
            _ => {}
        }
    }

    fn reconcile_all(&mut self) {
        for m in 0..self.leaves.len() {
            self.reconcile(m);
        }
    }

    /// The earliest instant the tree has self-driven work: an in-flight
    /// message arriving or a rotation falling due.
    fn next_wakeup(&self) -> Option<SimTime> {
        let message = self.in_flight.keys().next().map(|&(at, _)| at);
        let rotation = if self.root_queue.is_empty() {
            None
        } else {
            (0..self.leaves.len())
                .filter(|&m| self.slot_state[m] == SlotState::Holding)
                .map(|m| self.hold_since[m] + self.quantum)
                .min()
        };
        match (message, rotation) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// The waiting applications that are granted end-to-end, ascending.
    /// Walks the slot-holding machines' (small) active sets rather than
    /// the cluster-wide waiting set, so a release on one machine does not
    /// pay for every other machine's queue.
    fn granted_waiting(&self, waiting: &BTreeSet<AppId>) -> Vec<AppId> {
        let mut out: Vec<AppId> = self
            .leaves
            .iter()
            .enumerate()
            .filter(|&(m, _)| self.slot_state[m] == SlotState::Holding)
            .flat_map(|(_, leaf)| leaf.active())
            .filter(|app| waiting.contains(app))
            .collect();
        out.sort_unstable();
        out
    }

    fn stats(&self) -> ClusterStats {
        ClusterStats {
            machines: self.leaves.len(),
            slots: self.slots,
            escalations: self.escalations,
            root_grants: self.root_grants,
            slot_returns: self.slot_returns,
            leaf_messages: self.leaves.iter().map(Arbiter::message_count).sum(),
        }
    }
}

/// Hierarchical [`CoordinationTransport`]: per-machine leaf arbiters
/// under a slot-owning root, with modeled cross-arbiter message latency.
///
/// Built from a [`Scenario`] carrying a [`ClusterSpec`]
/// (`Session::<ClusterTransport>::with_transport`, or simply
/// [`Scenario::run`] which dispatches here automatically). `Send + Sync`
/// like [`SharedTransport`](crate::SharedTransport), so cluster sessions
/// fan out across the `iobench` shards unchanged.
#[derive(Debug, Clone)]
pub struct ClusterTransport {
    inner: Arc<Mutex<ClusterState>>,
}

impl ClusterTransport {
    /// Builds the arbiter tree for a validated spec; each machine's leaf
    /// is an independent copy of `arbiter` (same policy, fresh state).
    pub fn from_spec(spec: &ClusterSpec, arbiter: Arbiter) -> ClusterTransport {
        let mut state = ClusterState::build(spec.machines.len(), spec.slots, spec.quantum, arbiter);
        state.machine_of = spec.machine_of();
        state.latency = spec.machines.iter().map(|m| m.latency).collect();
        ClusterTransport {
            inner: Arc::new(Mutex::new(state)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ClusterState> {
        // Like SharedTransport: the state is a plain state machine, so a
        // poisoned lock is still usable.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Message-accounting snapshot (see [`ClusterStats`]).
    pub fn stats(&self) -> ClusterStats {
        self.lock().stats()
    }

    /// Latest load rollup escalated by each machine, in machine order —
    /// what the root knows about the cluster (the aggregation contract:
    /// nothing finer-grained ever crosses the tree).
    pub fn machine_loads(&self) -> Vec<MachineLoad> {
        self.lock().loads.clone()
    }

    /// Per-machine arbitration queue depth, in machine order: how many
    /// applications each leaf currently has parked. The root-side view
    /// load-aware placement decisions read.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.lock()
            .leaves
            .iter()
            .map(Arbiter::parked_count)
            .collect()
    }
}

impl CoordinationTransport for ClusterTransport {
    /// Degenerate single-machine tree (one leaf, one slot, zero latency):
    /// behaviorally identical to the flat transports.
    fn new(arbiter: Arbiter) -> Self {
        ClusterTransport {
            inner: Arc::new(Mutex::new(ClusterState::build(
                1,
                1,
                DEFAULT_QUANTUM,
                arbiter,
            ))),
        }
    }

    fn for_scenario(scenario: &Scenario, arbiter: Arbiter) -> Result<Self, ConfigError> {
        match &scenario.cluster {
            Some(spec) => {
                spec.validate(scenario.apps.iter().map(|a| a.id))
                    .map_err(ConfigError::Cluster)?;
                Ok(ClusterTransport::from_spec(spec, arbiter))
            }
            None => Ok(ClusterTransport::new(arbiter)),
        }
    }

    /// Visits machine 0's leaf — the degenerate entry point external
    /// [`Coordinator`](crate::Coordinator) embeddings use; the session
    /// drives the tree through [`CoordinationTransport::with_app`].
    fn with<R>(&self, f: impl FnOnce(&mut Arbiter) -> R) -> R {
        let mut state = self.lock();
        let result = f(&mut state.leaves[0]);
        let leaf_now = state.leaves[0].now();
        let now = state.now.max(leaf_now);
        state.pump(now);
        state.reconcile_all();
        result
    }

    fn with_app<R>(&self, app: AppId, f: impl FnOnce(&mut Arbiter) -> R) -> R {
        let mut state = self.lock();
        let m = state.machine(app);
        let result = f(&mut state.leaves[m]);
        // The session advances the leaf clock inside `f` (`set_now`);
        // propagate it to the tree, deliver whatever arrived by then, and
        // reconcile every machine's slot against its leaf workload.
        let leaf_now = state.leaves[m].now();
        let now = state.now.max(leaf_now);
        state.pump(now);
        state.reconcile_all();
        result
    }

    fn is_granted(&self, app: AppId) -> bool {
        self.lock().granted(app)
    }

    fn message_count(&self) -> u64 {
        self.lock().stats().total_messages()
    }

    fn resumable(&self, waiting: &BTreeSet<AppId>) -> Vec<AppId> {
        self.lock().granted_waiting(waiting)
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.lock().next_wakeup()
    }

    fn deliver_due(&self, now: SimTime, waiting: &BTreeSet<AppId>) -> Vec<AppId> {
        let mut state = self.lock();
        let delivered = state.pump(now);
        state.reconcile_all();
        if !delivered {
            // Nothing crossed the tree: every grant that exists was
            // already notified by the leaf-side paths. Returning nothing
            // keeps the 1-machine tree's event sequence bit-identical to
            // the flat arbiter's.
            return Vec::new();
        }
        state.granted_waiting(waiting)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::IoInfo;
    use crate::metrics::EfficiencyMetric;
    use crate::policy::DynamicPolicy;
    use crate::strategy::Strategy;
    use mpiio::Granularity;

    fn arbiter() -> Arbiter {
        Arbiter::new(
            Strategy::FcfsSerialize,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
    }

    fn spec(slots: u32, lats_and_apps: &[(u64, &[usize])]) -> ClusterSpec {
        ClusterSpec::new(
            slots,
            lats_and_apps
                .iter()
                .map(|&(lat, apps)| MachineSpec {
                    latency: SimDuration::from_ticks(lat),
                    apps: apps.iter().copied().map(AppId).collect(),
                })
                .collect(),
        )
    }

    fn info(app: usize) -> IoInfo {
        IoInfo {
            app: AppId(app),
            procs: 64,
            files_total: 1,
            rounds_total: 1,
            bytes_total: 1.0e9,
            bytes_remaining: 1.0e9,
            est_alone_total_secs: 10.0,
            est_alone_remaining_secs: 10.0,
            pfs_share: 1.0,
            granularity: Granularity::Round,
        }
    }

    /// Drives the tree exactly as the session does: visit the app's leaf
    /// with the clock advanced to `now`, then deliver due messages.
    fn request(t: &ClusterTransport, app: usize, now: SimTime) {
        t.with_app(AppId(app), |arb| {
            arb.set_now(now);
            arb.update_info(info(app));
            arb.request_access(AppId(app))
        });
    }

    fn settle(t: &ClusterTransport, waiting: &BTreeSet<AppId>) -> Vec<(SimTime, Vec<AppId>)> {
        let mut woken = Vec::new();
        while let Some(at) = t.next_wakeup() {
            let apps = t.deliver_due(at, waiting);
            if !apps.is_empty() {
                woken.push((at, apps));
            }
        }
        woken
    }

    #[test]
    fn spec_text_round_trips_exactly() {
        let mut s = spec(2, &[(2000, &[0, 1]), (0, &[2])]);
        s.quantum = SimDuration::from_ticks(12_345);
        let text = s.to_text();
        assert_eq!(
            text,
            "slots=2 quantum_ticks=12345 machine lat_ticks=2000 apps=0,1 machine lat_ticks=0 apps=2"
        );
        assert_eq!(ClusterSpec::from_text(&text).unwrap(), s);

        // An empty machine round-trips too.
        let empty = spec(1, &[(5, &[])]);
        assert_eq!(ClusterSpec::from_text(&empty.to_text()).unwrap(), empty);

        for broken in [
            "",
            "slots=x quantum_ticks=1",
            "slots=1",
            "slots=1 quantum_ticks=1 machine",
            "slots=1 quantum_ticks=1 machine lat_ticks=0 apps=a",
            "slots=1 quantum_ticks=1 rogue",
        ] {
            assert!(
                ClusterSpec::from_text(broken).is_err(),
                "{broken:?} must not parse"
            );
        }
    }

    #[test]
    fn validation_catches_topology_mistakes() {
        let apps = || (0..3).map(AppId);
        let ok = spec(1, &[(0, &[0, 1]), (0, &[2])]);
        ok.validate(apps()).unwrap();
        assert_eq!(
            spec(1, &[]).validate(apps()),
            Err(ClusterConfigError::NoMachines)
        );
        assert_eq!(
            spec(0, &[(0, &[0, 1, 2])]).validate(apps()),
            Err(ClusterConfigError::NoSlots)
        );
        assert_eq!(
            spec(1, &[(0, &[0, 1]), (0, &[1, 2])]).validate(apps()),
            Err(ClusterConfigError::DuplicateAssignment(AppId(1)))
        );
        assert_eq!(
            spec(1, &[(0, &[0, 1, 2, 7])]).validate(apps()),
            Err(ClusterConfigError::UnknownApp(AppId(7)))
        );
        assert_eq!(
            spec(1, &[(0, &[0, 2])]).validate(apps()),
            Err(ClusterConfigError::UnassignedApp(AppId(1)))
        );
    }

    #[test]
    fn escalated_grant_arrives_exactly_one_round_trip_later() {
        // Machine 0 holds the only slot but is idle; machine 1's request
        // must travel up (lat), queue, wait for machine 0's hand-back
        // (reconciled the moment the request arrives, another lat for the
        // zero-latency edge 0), and the grant travels down (lat): the
        // end-to-end grant lands exactly 2×lat after the request.
        let lat = 2_000u64;
        let s = spec(1, &[(0, &[0]), (lat, &[1])]);
        let t = ClusterTransport::from_spec(&s, arbiter());
        request(&t, 1, SimTime::ZERO);
        assert!(
            !t.is_granted(AppId(1)),
            "leaf granted, but no slot yet — not end-to-end"
        );

        let waiting: BTreeSet<AppId> = [AppId(1)].into();
        let woken = settle(&t, &waiting);
        assert_eq!(
            woken,
            vec![(SimTime::from_ticks(2 * lat), vec![AppId(1)])],
            "the grant must land exactly latency-up + latency-down later"
        );
        assert!(t.is_granted(AppId(1)));
    }

    #[test]
    fn root_messages_stay_exactly_linear_in_escalations() {
        // Two machines ping-pong the only slot: every hand-over is exactly
        // one escalation + one return + one grant — no hidden chatter.
        let s = spec(1, &[(0, &[0]), (0, &[1])]);
        let t = ClusterTransport::from_spec(&s, arbiter());
        let waiting = BTreeSet::new();
        let mut expected_escalations = 0;
        for round in 0..10u64 {
            let now = SimTime::from_ticks(round * 1_000);
            // Machine 1 asks, machine 0's idle slot rotates over, and the
            // release below hands it back next round.
            let app = 1 - (round as usize % 2);
            request(&t, app, now);
            expected_escalations += 1;
            settle(&t, &waiting);
            t.with_app(AppId(app), |arb| arb.release(AppId(app)));
            settle(&t, &waiting);
            let stats = t.stats();
            assert_eq!(stats.escalations, expected_escalations);
            assert_eq!(
                stats.root_messages(),
                stats.escalations + stats.root_grants + stats.slot_returns,
                "root traffic is exactly its three unit-cost message kinds"
            );
            assert!(
                stats.root_grants <= stats.escalations,
                "at most one grant per escalation"
            );
            assert!(
                stats.slot_returns <= stats.root_grants + 1,
                "at most one return per granted slot (plus the initial one)"
            );
        }
    }

    #[test]
    fn single_machine_tree_never_talks_to_the_root() {
        // The exactness envelope: with one machine the slot is assigned at
        // construction, nothing escalates, no latency is ever paid — the
        // golden kernel test pins the resulting bit-identical trace.
        let t = ClusterTransport::new(arbiter());
        request(&t, 0, SimTime::ZERO);
        assert!(t.is_granted(AppId(0)));
        request(&t, 1, SimTime::ZERO);
        t.with_app(AppId(0), |arb| arb.release(AppId(0)));
        assert!(t.is_granted(AppId(1)));
        assert_eq!(t.next_wakeup(), None, "no self-driven work, ever");
        let stats = t.stats();
        assert_eq!(stats.root_messages(), 0);
        assert_eq!(
            t.message_count(),
            stats.leaf_messages,
            "the tree's count is exactly the flat arbiter's"
        );
    }

    #[test]
    fn quantum_rotation_prevents_starvation() {
        // Machine 0 holds the slot and never goes idle; machine 1 queues.
        // The rotation quantum must revoke machine 0 and hand the slot
        // over anyway.
        let mut s = spec(1, &[(0, &[0]), (0, &[1])]);
        s.quantum = SimDuration::from_ticks(10_000);
        let t = ClusterTransport::from_spec(&s, arbiter());
        request(&t, 0, SimTime::ZERO);
        assert!(t.is_granted(AppId(0)));
        request(&t, 1, SimTime::ZERO);
        assert!(!t.is_granted(AppId(1)));

        // Neither application ever releases, so the quantum rotates the
        // slot between the two machines forever — drain wakeups only
        // until the queued machine gets its turn (a plain `settle` would
        // follow the rotation indefinitely).
        let waiting: BTreeSet<AppId> = [AppId(1)].into();
        let mut granted_at = None;
        for _ in 0..32 {
            // simlint: allow(R4, the loop stops before the queue drains)
            let at = t.next_wakeup().expect("rotation keeps the tree live");
            t.deliver_due(at, &waiting);
            if t.is_granted(AppId(1)) {
                granted_at = Some(at);
                break;
            }
        }
        assert!(
            granted_at.is_some(),
            "rotation must eventually grant the queued machine"
        );
        assert!(!t.is_granted(AppId(0)), "the revoked machine lost its slot");
        // And machine 0 re-escalated: it is queued again, not forgotten.
        let stats = t.stats();
        assert!(stats.escalations >= 2, "revoked machine re-escalates");
    }

    #[test]
    fn machine_loads_aggregate_per_machine_not_per_app() {
        let s = spec(1, &[(0, &[0]), (10, &[1, 2])]);
        let t = ClusterTransport::from_spec(&s, arbiter());
        // Both applications share their information before anyone asks for
        // access; the escalation the first request triggers then carries
        // the whole machine's rollup in a single message.
        t.with_app(AppId(1), |arb| {
            arb.update_info(info(1));
            arb.update_info(info(2));
        });
        request(&t, 1, SimTime::ZERO);
        request(&t, 2, SimTime::ZERO);
        let waiting = BTreeSet::new();
        settle(&t, &waiting);
        let loads = t.machine_loads();
        assert_eq!(loads.len(), 2);
        // Machine 1 escalated once; its rollup sums both applications.
        assert_eq!(loads[1].apps, 2);
        assert_eq!(loads[1].procs, 128);
        assert_eq!(loads[1].est_alone_remaining_secs, 20.0);
        // Queue depths are per machine (app 2 parked behind app 1 at the
        // leaf).
        assert_eq!(t.queue_depths(), vec![0, 1]);
    }
}
