//! The coordination arbiter.
//!
//! The paper leaves open whether decisions are taken "by the applications
//! themselves or enforced by a system-provided entity"; what matters is the
//! information exchanged and the resulting schedule. The [`Arbiter`] is that
//! decision point: coordinators forward the `Inform` / `Check` / `Wait` /
//! `Release` calls of their application to it, and it tracks who currently
//! holds access to the file system, who is waiting, and who has been
//! interrupted.
//!
//! The arbiter is purely a state machine over application identifiers and
//! exchanged [`IoInfo`]; it never touches the simulated file system, which
//! makes it directly reusable outside the simulation (e.g. behind an actual
//! MPI transport).

use crate::info::IoInfo;
use crate::policy::{DynDecision, DynamicPolicy};
use crate::strategy::{AccessOutcome, Strategy, YieldOutcome};
use pfs::AppId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Why an application is currently not accessing the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ParkedAs {
    /// Waiting for its first grant of the current phase.
    Waiting,
    /// Was accessing, yielded after an interruption request.
    Interrupted,
}

/// The global coordination state shared by all applications.
#[derive(Debug, Clone)]
pub struct Arbiter {
    strategy: Strategy,
    policy: DynamicPolicy,
    /// Applications currently allowed to access the file system.
    active: BTreeSet<AppId>,
    /// Parked applications in arrival order, with the reason they parked.
    parked: VecDeque<(AppId, ParkedAs)>,
    /// Active applications that have been asked to yield at their next
    /// coordination point.
    interrupt_requested: BTreeSet<AppId>,
    /// Latest information shared by each application (`Prepare`/`Inform`).
    info: BTreeMap<AppId, IoInfo>,
    /// Count of coordination messages exchanged (for accounting/ablations).
    messages: u64,
}

impl Arbiter {
    /// Creates an arbiter applying the given strategy. The dynamic policy
    /// is only consulted when the strategy is [`Strategy::Dynamic`].
    pub fn new(strategy: Strategy, policy: DynamicPolicy) -> Self {
        Arbiter {
            strategy,
            policy,
            active: BTreeSet::new(),
            parked: VecDeque::new(),
            interrupt_requested: BTreeSet::new(),
            info: BTreeMap::new(),
            messages: 0,
        }
    }

    /// The strategy in force.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Records (or refreshes) the information an application shared about
    /// its I/O activity. This is the effect of `Prepare` + `Inform`.
    pub fn update_info(&mut self, info: IoInfo) {
        self.messages += 1;
        self.info.insert(info.app, info);
    }

    /// Latest information shared by an application, if any.
    pub fn info_for(&self, app: AppId) -> Option<&IoInfo> {
        self.info.get(&app)
    }

    /// Applications currently granted access, in id order.
    pub fn active(&self) -> Vec<AppId> {
        self.active.iter().copied().collect()
    }

    /// Applications currently parked (waiting or interrupted), in queue
    /// order.
    pub fn parked(&self) -> Vec<AppId> {
        self.parked.iter().map(|(a, _)| *a).collect()
    }

    /// Whether the given application currently holds access.
    pub fn is_granted(&self, app: AppId) -> bool {
        self.active.contains(&app)
    }

    /// Whether the given application has a request queued (parked waiting
    /// for its first grant, or interrupted and waiting to resume). Together
    /// with [`Arbiter::is_granted`] this is the *pending-grant invariant*
    /// of the API: an application that asked for access and was refused is
    /// always either granted or pending — never forgotten.
    pub fn is_pending(&self, app: AppId) -> bool {
        self.parked.iter().any(|(a, _)| *a == app)
    }

    /// Number of coordination messages exchanged so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// An application asks for access to the file system at the start of an
    /// I/O phase (`Inform` followed by `Check`). Returns whether it may
    /// proceed; if not it is queued and [`Arbiter::is_granted`] will become
    /// true once access is granted.
    pub fn request_access(&mut self, app: AppId) -> AccessOutcome {
        self.messages += 1;
        if self.active.contains(&app) {
            return AccessOutcome::Granted;
        }
        if self.active.is_empty() && self.parked.is_empty() {
            self.active.insert(app);
            return AccessOutcome::Granted;
        }
        match self.strategy {
            Strategy::Interfere => {
                self.active.insert(app);
                AccessOutcome::Granted
            }
            Strategy::FcfsSerialize => {
                self.park(app, ParkedAs::Waiting);
                AccessOutcome::MustWait
            }
            Strategy::Interrupt => {
                for a in &self.active {
                    self.interrupt_requested.insert(*a);
                }
                self.park(app, ParkedAs::Waiting);
                AccessOutcome::MustWait
            }
            Strategy::Delay { max_wait_secs } => {
                self.park(app, ParkedAs::Waiting);
                AccessOutcome::MustWaitAtMost(max_wait_secs)
            }
            Strategy::Dynamic => {
                let requester = match self.info.get(&app) {
                    Some(i) => i.clone(),
                    None => {
                        // Without information we fall back to FCFS, the
                        // conservative choice.
                        self.park(app, ParkedAs::Waiting);
                        return AccessOutcome::MustWait;
                    }
                };
                let accessors: Vec<IoInfo> = self
                    .active
                    .iter()
                    .filter_map(|a| self.info.get(a).cloned())
                    .collect();
                match self.policy.decide(&requester, &accessors) {
                    DynDecision::Interfere => {
                        self.active.insert(app);
                        AccessOutcome::Granted
                    }
                    DynDecision::WaitFcfs => {
                        self.park(app, ParkedAs::Waiting);
                        AccessOutcome::MustWait
                    }
                    DynDecision::InterruptAccessors => {
                        for a in &self.active {
                            self.interrupt_requested.insert(*a);
                        }
                        self.park(app, ParkedAs::Waiting);
                        AccessOutcome::MustWait
                    }
                }
            }
        }
    }

    /// An active application reached a coordination point between two
    /// atomic accesses (`Release` + `Inform` + `Check` in the ADIO layer).
    /// If another application has requested an interruption, the caller is
    /// parked and must stop issuing I/O until re-granted.
    pub fn yield_point(&mut self, app: AppId) -> YieldOutcome {
        self.messages += 1;
        if !self.active.contains(&app) {
            // Not an accessor (e.g. running under Interfere without a
            // grant); nothing to do.
            return YieldOutcome::Continue;
        }
        if self.interrupt_requested.remove(&app) {
            self.active.remove(&app);
            self.park(app, ParkedAs::Interrupted);
            // The whole point of yielding is to let the waiting newcomer in.
            self.grant_next(ParkedAs::Waiting);
            YieldOutcome::YieldNow
        } else {
            YieldOutcome::Continue
        }
    }

    /// The application finished its I/O phase (`Release` at phase end /
    /// `Complete`). Frees its slot and grants the next parked application.
    pub fn release(&mut self, app: AppId) {
        self.messages += 1;
        self.active.remove(&app);
        self.interrupt_requested.remove(&app);
        // Also drop it from the parked queue if it had been re-queued.
        self.parked.retain(|(a, _)| *a != app);
        // Interrupted applications resume before later waiters: the paper's
        // description is that the interrupted application resumes its own
        // operation once the interrupter finishes its I/O.
        self.grant_next(ParkedAs::Interrupted);
    }

    /// Forces a parked application to be granted access even though others
    /// are active (used by the bounded-delay strategy when the wait budget
    /// expires).
    pub fn force_grant(&mut self, app: AppId) {
        if self.active.contains(&app) {
            return;
        }
        self.parked.retain(|(a, _)| *a != app);
        self.active.insert(app);
        self.messages += 1;
    }

    fn park(&mut self, app: AppId, reason: ParkedAs) {
        if !self.parked.iter().any(|(a, _)| *a == app) {
            self.parked.push_back((app, reason));
        }
    }

    /// Grants access to the next parked application if nobody is active,
    /// preferring applications parked for the given reason: a yield hands
    /// the slot to a *waiting* newcomer, a release hands it back to an
    /// *interrupted* application (which resumes before later waiters).
    fn grant_next(&mut self, prefer: ParkedAs) {
        if !self.active.is_empty() || self.parked.is_empty() {
            return;
        }
        let idx = self
            .parked
            .iter()
            .position(|(_, r)| *r == prefer)
            .unwrap_or(0);
        if let Some((app, _)) = self.parked.remove(idx) {
            self.active.insert(app);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::EfficiencyMetric;
    use mpiio::Granularity;

    fn arbiter(strategy: Strategy) -> Arbiter {
        Arbiter::new(
            strategy,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
    }

    fn info(app: usize, procs: u32, total: f64, remaining: f64) -> IoInfo {
        IoInfo {
            app: AppId(app),
            procs,
            files_total: 1,
            rounds_total: 1,
            bytes_total: total,
            bytes_remaining: remaining,
            est_alone_total_secs: total,
            est_alone_remaining_secs: remaining,
            pfs_share: 1.0,
            granularity: Granularity::Round,
        }
    }

    #[test]
    fn first_requester_is_always_granted() {
        for strategy in [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
        ] {
            let mut arb = arbiter(strategy);
            assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
            assert!(arb.is_granted(AppId(0)));
        }
    }

    #[test]
    fn interfere_grants_everyone() {
        let mut arb = arbiter(Strategy::Interfere);
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::Granted);
        assert_eq!(arb.active(), vec![AppId(0), AppId(1)]);
    }

    #[test]
    fn fcfs_queues_second_app_until_release() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        assert!(!arb.is_granted(AppId(1)));
        // Yield points do not preempt under FCFS.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
    }

    #[test]
    fn interrupt_preempts_at_next_yield_point() {
        let mut arb = arbiter(Strategy::Interrupt);
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        // The accessor keeps running until its next coordination point...
        assert!(!arb.is_granted(AppId(1)));
        // ...where it is told to yield and the newcomer is granted.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(!arb.is_granted(AppId(0)));
        assert!(arb.is_granted(AppId(1)));
        // When the newcomer releases, the interrupted application resumes.
        arb.release(AppId(1));
        assert!(arb.is_granted(AppId(0)));
    }

    #[test]
    fn interrupted_app_resumes_before_later_waiters() {
        let mut arb = arbiter(Strategy::Interrupt);
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        arb.yield_point(AppId(0)); // 0 interrupted, 1 active
        arb.request_access(AppId(2)); // 2 parks, asks to interrupt 1
        assert_eq!(arb.yield_point(AppId(1)), YieldOutcome::YieldNow);
        // 2 was the head of the waiting queue but 1 was interrupted... the
        // next grant goes to the earliest *interrupted* application.
        assert!(arb.is_granted(AppId(0)) || arb.is_granted(AppId(2)));
        // Releases eventually drain everyone.
        let mut done = 0;
        for _ in 0..10 {
            let active = arb.active();
            if let Some(a) = active.first() {
                arb.release(*a);
                done += 1;
            }
        }
        assert!(done >= 3);
        assert!(arb.active().is_empty());
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn delay_strategy_reports_bound_and_force_grant_overlaps() {
        let mut arb = arbiter(Strategy::Delay { max_wait_secs: 3.0 });
        arb.request_access(AppId(0));
        assert_eq!(
            arb.request_access(AppId(1)),
            AccessOutcome::MustWaitAtMost(3.0)
        );
        arb.force_grant(AppId(1));
        assert!(arb.is_granted(AppId(1)));
        assert!(
            arb.is_granted(AppId(0)),
            "both overlap after the delay expires"
        );
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn dynamic_interrupts_when_cheaper() {
        let mut arb = arbiter(Strategy::Dynamic);
        arb.update_info(info(0, 2048, 28.0, 25.0));
        arb.update_info(info(1, 2048, 7.0, 7.0));
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        // Interrupting A costs 2048×7, FCFS costs 2048×25 → interrupt.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(arb.is_granted(AppId(1)));
    }

    #[test]
    fn dynamic_waits_when_accessor_is_nearly_done() {
        let mut arb = arbiter(Strategy::Dynamic);
        arb.update_info(info(0, 2048, 28.0, 3.0));
        arb.update_info(info(1, 2048, 7.0, 7.0));
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        // FCFS costs 2048×3, interrupting costs 2048×7 → no interruption.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        assert!(!arb.is_granted(AppId(1)));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
    }

    #[test]
    fn dynamic_without_info_falls_back_to_fcfs() {
        let mut arb = arbiter(Strategy::Dynamic);
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
    }

    #[test]
    fn release_is_idempotent_and_clears_state() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        arb.release(AppId(0));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
        arb.release(AppId(1));
        assert!(arb.active().is_empty());
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn message_count_increases_with_coordination() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        let before = arb.message_count();
        arb.update_info(info(0, 8, 1.0, 1.0));
        arb.request_access(AppId(0));
        arb.yield_point(AppId(0));
        arb.release(AppId(0));
        assert!(arb.message_count() >= before + 4);
    }

    #[test]
    fn refused_requests_stay_pending_until_granted() {
        // The pending-grant invariant behind `Coordinator::wait`: a request
        // that is not granted immediately is queued — it can always be
        // found in the parked set until a release/yield grants it.
        for strategy in [
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
            Strategy::Delay { max_wait_secs: 9.0 },
        ] {
            let mut arb = arbiter(strategy);
            arb.update_info(info(0, 64, 10.0, 10.0));
            arb.update_info(info(1, 64, 10.0, 10.0));
            arb.request_access(AppId(0));
            let outcome = arb.request_access(AppId(1));
            if outcome != AccessOutcome::Granted {
                assert!(
                    arb.is_pending(AppId(1)),
                    "{strategy:?}: refused request must be queued"
                );
                assert!(!arb.is_granted(AppId(1)));
                arb.release(AppId(0));
                // A yield-less release hands the slot over.
                assert!(arb.is_granted(AppId(1)), "{strategy:?}");
                assert!(!arb.is_pending(AppId(1)), "{strategy:?}");
            }
        }
    }

    #[test]
    fn dynamic_many_apps_grant_in_arrival_order() {
        // Machine-mix regime: N applications, all with identical work, so
        // the dynamic policy always prefers waiting (interrupting an
        // accessor with as much remaining work as the requester saves
        // nothing). Grants must then flow strictly in arrival order.
        const N: usize = 8;
        let mut arb = arbiter(Strategy::Dynamic);
        for i in 0..N {
            arb.update_info(info(i, 512, 10.0, 10.0));
        }
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        for i in 1..N {
            assert_eq!(arb.request_access(AppId(i)), AccessOutcome::MustWait);
            assert!(arb.is_pending(AppId(i)));
        }
        assert_eq!(arb.parked(), (1..N).map(AppId).collect::<Vec<_>>());

        let mut grant_order = vec![AppId(0)];
        for _ in 1..N {
            let current = arb.active()[0];
            // Mid-phase coordination points never preempt here: waiting is
            // always at least as cheap as interrupting an equal peer.
            assert_eq!(arb.yield_point(current), YieldOutcome::Continue);
            arb.release(current);
            let next = arb.active();
            assert_eq!(next.len(), 1, "exactly one accessor at a time");
            grant_order.push(next[0]);
        }
        assert_eq!(
            grant_order,
            (0..N).map(AppId).collect::<Vec<_>>(),
            "grants must follow arrival order"
        );
    }

    #[test]
    fn dynamic_many_apps_interruption_fairness() {
        // A long-running accessor among N short requesters: the policy
        // interrupts the accessor, and once the interrupters drain, the
        // interrupted application resumes *before* any later arrival —
        // interruption must not starve the preempted application.
        let mut arb = arbiter(Strategy::Dynamic);
        arb.update_info(info(0, 2048, 100.0, 90.0));
        arb.request_access(AppId(0));
        // Three small applications arrive while 0 holds the file system.
        for i in 1..4 {
            arb.update_info(info(i, 2048, 5.0, 5.0));
            assert_eq!(arb.request_access(AppId(i)), AccessOutcome::MustWait);
        }
        // 0 discovers the interruption request at its next yield point.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(!arb.is_granted(AppId(0)));
        assert!(arb.is_pending(AppId(0)), "interrupted, not forgotten");
        let first = arb.active()[0];
        assert_ne!(first, AppId(0), "a waiting newcomer got the slot");

        // When the interrupter releases, the interrupted application
        // resumes *before* the later waiters (they arrived after it was
        // already holding the file system).
        arb.release(first);
        assert!(
            arb.is_granted(AppId(0)),
            "interrupted application resumes before later waiters"
        );
        // An interruption request exists only at request time: the parked
        // waiters do not preempt the resumed application again.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        arb.release(AppId(0));

        // The remaining waiters then drain in arrival order.
        let mut drained = Vec::new();
        while let Some(&next) = arb.active().first() {
            drained.push(next);
            arb.release(next);
        }
        let mut expected: Vec<AppId> = (1..4).map(AppId).filter(|a| *a != first).collect();
        expected.sort();
        assert_eq!(drained, expected, "later waiters drain in arrival order");
        assert!(arb.active().is_empty());
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn dynamic_messages_scale_linearly_with_coordination_points() {
        // Every protocol call (`update_info`, `request_access`,
        // `yield_point`, `release`) is exactly one counted message, so the
        // total is an exact linear function of the number of coordination
        // points — no hidden N² chatter as the mix grows.
        for n in [4usize, 8, 16, 32] {
            let mut arb = arbiter(Strategy::Dynamic);
            let yields_per_app = 3u64;
            for i in 0..n {
                arb.update_info(info(i, 256, 10.0, 10.0));
                arb.request_access(AppId(i));
            }
            for round in 0..yields_per_app {
                for i in 0..n {
                    if arb.is_granted(AppId(i)) {
                        arb.yield_point(AppId(i));
                    } else {
                        // Refresh shared information at the coordination
                        // point instead.
                        arb.update_info(info(i, 256, 10.0, 10.0 - round as f64));
                    }
                }
            }
            for i in 0..n {
                arb.release(AppId(i));
            }
            let coordination_points = n as u64      // initial update_info
                + n as u64                          // request_access
                + yields_per_app * n as u64         // one call per point
                + n as u64; // release
            assert_eq!(
                arb.message_count(),
                coordination_points,
                "messages must be exactly linear in coordination points (n = {n})"
            );
        }
    }

    #[test]
    fn double_request_from_same_app_stays_granted() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        assert_eq!(arb.active(), vec![AppId(0)]);
    }
}
