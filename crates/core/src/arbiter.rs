//! The coordination arbiter: the arbitration *mechanism engine*.
//!
//! The paper leaves open whether decisions are taken "by the applications
//! themselves or enforced by a system-provided entity"; what matters is the
//! information exchanged and the resulting schedule. The [`Arbiter`] is that
//! decision point: coordinators forward the `Inform` / `Check` / `Wait` /
//! `Release` calls of their application to it, and it tracks who currently
//! holds access to the file system, who is waiting, and who has been
//! interrupted.
//!
//! The arbiter owns only the *mechanisms* — granting, parking, interrupt
//! flags, resume ordering, message accounting. Every *decision* (admit or
//! queue a newcomer, preempt an accessor, pick the next grantee, honour a
//! delay timeout) is delegated to a boxed
//! [`ArbitrationPolicy`], which
//! observes the state through a read-only
//! [`ArbiterView`]. The legacy
//! [`Strategy`] enum survives as a constructor shim ([`Arbiter::new`])
//! that installs the corresponding built-in policy.
//!
//! The arbiter is purely a state machine over application identifiers and
//! exchanged [`IoInfo`]; it never touches the simulated file system, which
//! makes it directly reusable outside the simulation (e.g. behind an actual
//! MPI transport).

use crate::arbitration::{
    builtin_policy, ArbiterView, ArbitrationPolicy, GrantTrigger, ParkReason, ParkedQueue,
    RequestDecision, TimeoutDecision, YieldDecision,
};
use crate::info::IoInfo;
use crate::policy::DynamicPolicy;
use crate::strategy::{AccessOutcome, Strategy, YieldOutcome};
use pfs::AppId;
use simcore::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// Builds the read-only policy view from the engine's fields without
/// borrowing the policy itself (the policy is called `&mut` while the
/// view borrows the rest of the state).
macro_rules! view {
    ($self:ident) => {
        ArbiterView {
            active: &$self.active,
            parked: &$self.parked,
            interrupt_requested: &$self.interrupt_requested,
            info: &$self.info,
            now: $self.now,
            messages: $self.messages,
        }
    };
}

/// The global coordination state shared by all applications.
#[derive(Debug, Clone)]
pub struct Arbiter {
    /// The pluggable decision maker.
    policy: Box<dyn ArbitrationPolicy>,
    /// The legacy strategy this arbiter was constructed from, when it was
    /// ([`Arbiter::new`]); `None` for free-form policies.
    strategy: Option<Strategy>,
    /// Applications currently allowed to access the file system.
    active: BTreeSet<AppId>,
    /// Parked applications in arrival order, with the reason they parked.
    parked: ParkedQueue,
    /// Active applications that have been asked to yield at their next
    /// coordination point.
    interrupt_requested: BTreeSet<AppId>,
    /// Latest information shared by each application (`Prepare`/`Inform`).
    info: BTreeMap<AppId, IoInfo>,
    /// Count of coordination messages exchanged (for accounting/ablations).
    messages: u64,
    /// Simulated clock, advanced by the driver ([`Arbiter::set_now`]) so
    /// time-aware policies can observe it.
    now: SimTime,
}

impl Arbiter {
    /// Creates an arbiter applying the given legacy strategy — a
    /// compatibility shim over [`Arbiter::with_policy`] installing the
    /// corresponding built-in policy. The dynamic policy configures the
    /// cost model and is only consulted when the strategy is
    /// [`Strategy::Dynamic`].
    pub fn new(strategy: Strategy, policy: DynamicPolicy) -> Self {
        let mut arbiter = Arbiter::with_policy(builtin_policy(strategy, policy));
        arbiter.strategy = Some(strategy);
        arbiter
    }

    /// Creates an arbiter driven by an arbitrary [`ArbitrationPolicy`] —
    /// the open entry point of the arbitration layer.
    pub fn with_policy(policy: Box<dyn ArbitrationPolicy>) -> Self {
        Arbiter {
            policy,
            strategy: None,
            active: BTreeSet::new(),
            parked: ParkedQueue::default(),
            interrupt_requested: BTreeSet::new(),
            info: BTreeMap::new(),
            messages: 0,
            now: SimTime::ZERO,
        }
    }

    /// The legacy strategy in force, when the arbiter was built from one;
    /// `None` for free-form policies.
    pub fn strategy(&self) -> Option<Strategy> {
        self.strategy
    }

    /// Display label of the installed policy (e.g. `fcfs`, `delay(30s)`,
    /// `rr(10s)`).
    pub fn policy_label(&self) -> String {
        self.policy.label()
    }

    /// Advances the arbiter's clock so time-aware policies (quanta,
    /// deadlines) can observe simulated time. Monotone: the clock never
    /// goes backwards. Not a coordination message.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = self.now.max(now);
    }

    /// Records (or refreshes) the information an application shared about
    /// its I/O activity. This is the effect of `Prepare` + `Inform`.
    pub fn update_info(&mut self, info: IoInfo) {
        self.messages += 1;
        self.info.insert(info.app, info);
    }

    /// Latest information shared by an application, if any.
    pub fn info_for(&self, app: AppId) -> Option<&IoInfo> {
        self.info.get(&app)
    }

    /// Latest information shared by every application, in id order — the
    /// source a hierarchical arbiter aggregates into per-machine rollups
    /// (read-only; sharing information stays a coordinator-driven act).
    pub fn infos(&self) -> impl Iterator<Item = &IoInfo> {
        self.info.values()
    }

    /// The arbiter's current simulated clock (last [`Arbiter::set_now`]).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Applications currently granted access, in id order.
    pub fn active(&self) -> Vec<AppId> {
        self.active.iter().copied().collect()
    }

    /// Number of applications currently granted access.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Applications currently parked (waiting or interrupted), in queue
    /// order.
    pub fn parked(&self) -> Vec<AppId> {
        self.parked.iter().map(|(a, _)| a).collect()
    }

    /// Number of applications currently parked — the arbiter's queue
    /// depth, without materializing the queue (load-aware callers such as
    /// the hierarchical root poll this on every visit).
    pub fn parked_count(&self) -> usize {
        self.parked.len()
    }

    /// Whether the given application currently holds access.
    pub fn is_granted(&self, app: AppId) -> bool {
        self.active.contains(&app)
    }

    /// Whether the given application has a request queued (parked waiting
    /// for its first grant, or interrupted and waiting to resume). Together
    /// with [`Arbiter::is_granted`] this is the *pending-grant invariant*
    /// of the API: an application that asked for access and was refused is
    /// always either granted or pending — never forgotten.
    pub fn is_pending(&self, app: AppId) -> bool {
        self.parked.contains(app)
    }

    /// Number of coordination messages exchanged so far.
    pub fn message_count(&self) -> u64 {
        self.messages
    }

    /// An application asks for access to the file system at the start of an
    /// I/O phase (`Inform` followed by `Check`). Returns whether it may
    /// proceed; if not it is queued and [`Arbiter::is_granted`] will become
    /// true once access is granted.
    ///
    /// When the file system is completely free (nobody active, nobody
    /// parked) the engine grants without consulting the policy; every
    /// contended arrival is a policy decision
    /// ([`ArbitrationPolicy::on_request`]).
    pub fn request_access(&mut self, app: AppId) -> AccessOutcome {
        self.messages += 1;
        if self.active.contains(&app) {
            return AccessOutcome::Granted;
        }
        if self.active.is_empty() && self.parked.is_empty() {
            self.grant(app);
            return AccessOutcome::Granted;
        }
        let decision = self.policy.on_request(app, &view!(self));
        match decision {
            RequestDecision::Admit => {
                self.grant(app);
                AccessOutcome::Granted
            }
            RequestDecision::Queue => {
                self.park(app, ParkReason::Waiting);
                AccessOutcome::MustWait
            }
            RequestDecision::QueueWithTimeout { max_wait_secs } => {
                self.park(app, ParkReason::Waiting);
                AccessOutcome::MustWaitAtMost(max_wait_secs)
            }
            RequestDecision::QueueAndInterrupt => {
                for a in &self.active {
                    self.interrupt_requested.insert(*a);
                }
                self.park(app, ParkReason::Waiting);
                AccessOutcome::MustWait
            }
        }
    }

    /// An active application reached a coordination point between two
    /// atomic accesses (`Release` + `Inform` + `Check` in the ADIO layer).
    /// The policy decides ([`ArbitrationPolicy::on_yield`]) whether the
    /// caller pauses here; a yielded application is parked as
    /// [`ParkReason::Interrupted`] and must stop issuing I/O until
    /// re-granted.
    pub fn yield_point(&mut self, app: AppId) -> YieldOutcome {
        self.messages += 1;
        if !self.active.contains(&app) {
            // Not an accessor (e.g. running under Interfere without a
            // grant); nothing to do.
            return YieldOutcome::Continue;
        }
        match self.policy.on_yield(app, &view!(self)) {
            YieldDecision::Continue => YieldOutcome::Continue,
            YieldDecision::Yield => {
                self.interrupt_requested.remove(&app);
                self.active.remove(&app);
                self.park(app, ParkReason::Interrupted);
                // The whole point of yielding is to let a parked
                // application in.
                self.grant_next(GrantTrigger::Yielded);
                YieldOutcome::YieldNow
            }
        }
    }

    /// The application finished its I/O phase (`Release` at phase end /
    /// `Complete`). Frees its slot and grants the next parked application
    /// (chosen by [`ArbitrationPolicy::select_next`]).
    pub fn release(&mut self, app: AppId) {
        self.messages += 1;
        self.active.remove(&app);
        self.interrupt_requested.remove(&app);
        // Also drop it from the parked queue if it had been re-queued.
        self.parked.remove(app);
        self.grant_next(GrantTrigger::Released);
    }

    /// Forces a parked application to be granted access even though others
    /// are active (used by the bounded-delay strategy when the wait budget
    /// expires).
    ///
    /// **Contract with pending delay timeouts**: a force-granted
    /// application always leaves the parked queue — its pending entry is
    /// cleared here, so a later release can never hand it a second,
    /// spurious grant, and [`Arbiter::is_pending`] turns false the moment
    /// the force lands. Callers driving their own delay timers (see
    /// [`Coordinator::delay_elapsed`](crate::Coordinator::delay_elapsed))
    /// rely on exactly this to conclude the pending request once.
    pub fn force_grant(&mut self, app: AppId) {
        if self.active.contains(&app) {
            return;
        }
        self.parked.remove(app);
        self.grant(app);
        self.messages += 1;
        debug_assert!(
            !self.is_pending(app),
            "force_grant must clear {app}'s pending entry"
        );
    }

    /// A bounded-delay budget expired for `app`'s queued request: asks the
    /// policy ([`ArbitrationPolicy::on_delay_expired`]) whether to force
    /// the grant through. Returns whether the application may now proceed
    /// (`true` when it was already granted in the meantime or the policy
    /// forced the grant; `false` when the policy keeps it queued).
    pub fn delay_expired(&mut self, app: AppId) -> bool {
        if self.active.contains(&app) {
            return true;
        }
        match self.policy.on_delay_expired(app, &view!(self)) {
            TimeoutDecision::ForceGrant => {
                self.force_grant(app);
                true
            }
            TimeoutDecision::KeepWaiting => false,
        }
    }

    fn park(&mut self, app: AppId, reason: ParkReason) {
        self.parked.push_back(app, reason);
    }

    /// Inserts `app` into the active set and notifies the policy — every
    /// grant, however it came about, flows through here.
    fn grant(&mut self, app: AppId) {
        self.active.insert(app);
        self.policy.on_grant(app, &view!(self));
    }

    /// Grants access to the next parked application if nobody is active.
    /// The choice is the policy's ([`ArbitrationPolicy::select_next`]);
    /// an invalid answer (not parked / `None`) falls back to the head of
    /// the queue so a buggy policy can delay but never deadlock the
    /// engine.
    fn grant_next(&mut self, trigger: GrantTrigger) {
        if !self.active.is_empty() || self.parked.is_empty() {
            return;
        }
        let pick = self.policy.select_next(trigger, &view!(self));
        // An invalid answer (not parked / `None`) falls back to the head.
        let chosen = pick
            .filter(|app| self.parked.contains(*app))
            .or_else(|| self.parked.first());
        if let Some(app) = chosen {
            self.parked.remove(app);
            self.grant(app);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitration::{RoundRobinQuantum, ShortestRemainingFirst, WeightedPriority};
    use crate::metrics::EfficiencyMetric;
    use mpiio::Granularity;

    fn arbiter(strategy: Strategy) -> Arbiter {
        Arbiter::new(
            strategy,
            DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
        )
    }

    fn info(app: usize, procs: u32, total: f64, remaining: f64) -> IoInfo {
        IoInfo {
            app: AppId(app),
            procs,
            files_total: 1,
            rounds_total: 1,
            bytes_total: total,
            bytes_remaining: remaining,
            est_alone_total_secs: total,
            est_alone_remaining_secs: remaining,
            pfs_share: 1.0,
            granularity: Granularity::Round,
        }
    }

    #[test]
    fn first_requester_is_always_granted() {
        for strategy in [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
        ] {
            let mut arb = arbiter(strategy);
            assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
            assert!(arb.is_granted(AppId(0)));
        }
    }

    #[test]
    fn interfere_grants_everyone() {
        let mut arb = arbiter(Strategy::Interfere);
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::Granted);
        assert_eq!(arb.active(), vec![AppId(0), AppId(1)]);
    }

    #[test]
    fn fcfs_queues_second_app_until_release() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        assert!(!arb.is_granted(AppId(1)));
        // Yield points do not preempt under FCFS.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
    }

    #[test]
    fn interrupt_preempts_at_next_yield_point() {
        let mut arb = arbiter(Strategy::Interrupt);
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        // The accessor keeps running until its next coordination point...
        assert!(!arb.is_granted(AppId(1)));
        // ...where it is told to yield and the newcomer is granted.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(!arb.is_granted(AppId(0)));
        assert!(arb.is_granted(AppId(1)));
        // When the newcomer releases, the interrupted application resumes.
        arb.release(AppId(1));
        assert!(arb.is_granted(AppId(0)));
    }

    #[test]
    fn interrupted_app_resumes_before_later_waiters() {
        let mut arb = arbiter(Strategy::Interrupt);
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        arb.yield_point(AppId(0)); // 0 interrupted, 1 active
        arb.request_access(AppId(2)); // 2 parks, asks to interrupt 1
        assert_eq!(arb.yield_point(AppId(1)), YieldOutcome::YieldNow);
        // 2 was the head of the waiting queue but 1 was interrupted... the
        // next grant goes to the earliest *interrupted* application.
        assert!(arb.is_granted(AppId(0)) || arb.is_granted(AppId(2)));
        // Releases eventually drain everyone.
        let mut done = 0;
        for _ in 0..10 {
            let active = arb.active();
            if let Some(a) = active.first() {
                arb.release(*a);
                done += 1;
            }
        }
        assert!(done >= 3);
        assert!(arb.active().is_empty());
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn delay_strategy_reports_bound_and_force_grant_overlaps() {
        let mut arb = arbiter(Strategy::Delay { max_wait_secs: 3.0 });
        arb.request_access(AppId(0));
        assert_eq!(
            arb.request_access(AppId(1)),
            AccessOutcome::MustWaitAtMost(3.0)
        );
        arb.force_grant(AppId(1));
        assert!(arb.is_granted(AppId(1)));
        assert!(
            arb.is_granted(AppId(0)),
            "both overlap after the delay expires"
        );
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn force_grant_clears_the_pending_entry() {
        // The documented force-grant ↔ delay-timeout contract: once the
        // budget expires and the request is forced through, the queue
        // entry is gone — a later release cannot double-grant, and the
        // pending-grant invariant reports "granted", not "pending".
        let mut arb = arbiter(Strategy::Delay { max_wait_secs: 5.0 });
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        assert!(arb.is_pending(AppId(1)));
        arb.force_grant(AppId(1));
        assert!(arb.is_granted(AppId(1)));
        assert!(!arb.is_pending(AppId(1)), "pending entry must be cleared");
        // The overlapped accessor finishing must not disturb the forced
        // grantee: it stays granted, nothing else is promoted.
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
        assert_eq!(arb.active(), vec![AppId(1)]);
        assert!(arb.parked().is_empty());
        // Idempotent on an already-granted application.
        let messages = arb.message_count();
        arb.force_grant(AppId(1));
        assert_eq!(arb.message_count(), messages);
    }

    #[test]
    fn delay_expired_consults_the_policy() {
        // Built-in bounded delay forces the grant through…
        let mut arb = arbiter(Strategy::Delay { max_wait_secs: 1.0 });
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        assert!(arb.delay_expired(AppId(1)));
        assert!(arb.is_granted(AppId(1)) && !arb.is_pending(AppId(1)));
        // …and an already-granted application is a proceed without a
        // forced grant (no extra message).
        let messages = arb.message_count();
        assert!(arb.delay_expired(AppId(1)));
        assert_eq!(arb.message_count(), messages);

        // A policy that withdraws the promise keeps the request queued.
        #[derive(Debug, Clone)]
        struct Renege;
        impl ArbitrationPolicy for Renege {
            fn spec(&self) -> crate::arbitration::PolicySpec {
                crate::arbitration::PolicySpec::new("renege")
            }
            fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
                RequestDecision::QueueWithTimeout { max_wait_secs: 1.0 }
            }
            fn on_delay_expired(
                &mut self,
                _app: AppId,
                _view: &ArbiterView<'_>,
            ) -> TimeoutDecision {
                TimeoutDecision::KeepWaiting
            }
            fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
                Box::new(self.clone())
            }
        }
        let mut arb = Arbiter::with_policy(Box::new(Renege));
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        assert!(!arb.delay_expired(AppId(1)), "policy kept it waiting");
        assert!(arb.is_pending(AppId(1)) && !arb.is_granted(AppId(1)));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)), "still granted by the release");
    }

    #[test]
    fn dynamic_interrupts_when_cheaper() {
        let mut arb = arbiter(Strategy::Dynamic);
        arb.update_info(info(0, 2048, 28.0, 25.0));
        arb.update_info(info(1, 2048, 7.0, 7.0));
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        // Interrupting A costs 2048×7, FCFS costs 2048×25 → interrupt.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(arb.is_granted(AppId(1)));
    }

    #[test]
    fn dynamic_waits_when_accessor_is_nearly_done() {
        let mut arb = arbiter(Strategy::Dynamic);
        arb.update_info(info(0, 2048, 28.0, 3.0));
        arb.update_info(info(1, 2048, 7.0, 7.0));
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        // FCFS costs 2048×3, interrupting costs 2048×7 → no interruption.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        assert!(!arb.is_granted(AppId(1)));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
    }

    #[test]
    fn dynamic_without_info_falls_back_to_fcfs() {
        let mut arb = arbiter(Strategy::Dynamic);
        arb.request_access(AppId(0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
    }

    #[test]
    fn release_is_idempotent_and_clears_state() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        arb.release(AppId(0));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)));
        arb.release(AppId(1));
        assert!(arb.active().is_empty());
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn message_count_increases_with_coordination() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        let before = arb.message_count();
        arb.update_info(info(0, 8, 1.0, 1.0));
        arb.request_access(AppId(0));
        arb.yield_point(AppId(0));
        arb.release(AppId(0));
        assert!(arb.message_count() >= before + 4);
    }

    #[test]
    fn refused_requests_stay_pending_until_granted() {
        // The pending-grant invariant behind `Coordinator::wait`: a request
        // that is not granted immediately is queued — it can always be
        // found in the parked set until a release/yield grants it.
        for strategy in [
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
            Strategy::Delay { max_wait_secs: 9.0 },
        ] {
            let mut arb = arbiter(strategy);
            arb.update_info(info(0, 64, 10.0, 10.0));
            arb.update_info(info(1, 64, 10.0, 10.0));
            arb.request_access(AppId(0));
            let outcome = arb.request_access(AppId(1));
            if outcome != AccessOutcome::Granted {
                assert!(
                    arb.is_pending(AppId(1)),
                    "{strategy:?}: refused request must be queued"
                );
                assert!(!arb.is_granted(AppId(1)));
                arb.release(AppId(0));
                // A yield-less release hands the slot over.
                assert!(arb.is_granted(AppId(1)), "{strategy:?}");
                assert!(!arb.is_pending(AppId(1)), "{strategy:?}");
            }
        }
    }

    #[test]
    fn dynamic_many_apps_grant_in_arrival_order() {
        // Machine-mix regime: N applications, all with identical work, so
        // the dynamic policy always prefers waiting (interrupting an
        // accessor with as much remaining work as the requester saves
        // nothing). Grants must then flow strictly in arrival order.
        const N: usize = 8;
        let mut arb = arbiter(Strategy::Dynamic);
        for i in 0..N {
            arb.update_info(info(i, 512, 10.0, 10.0));
        }
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        for i in 1..N {
            assert_eq!(arb.request_access(AppId(i)), AccessOutcome::MustWait);
            assert!(arb.is_pending(AppId(i)));
        }
        assert_eq!(arb.parked(), (1..N).map(AppId).collect::<Vec<_>>());

        let mut grant_order = vec![AppId(0)];
        for _ in 1..N {
            let current = arb.active()[0];
            // Mid-phase coordination points never preempt here: waiting is
            // always at least as cheap as interrupting an equal peer.
            assert_eq!(arb.yield_point(current), YieldOutcome::Continue);
            arb.release(current);
            let next = arb.active();
            assert_eq!(next.len(), 1, "exactly one accessor at a time");
            grant_order.push(next[0]);
        }
        assert_eq!(
            grant_order,
            (0..N).map(AppId).collect::<Vec<_>>(),
            "grants must follow arrival order"
        );
    }

    #[test]
    fn dynamic_many_apps_interruption_fairness() {
        // A long-running accessor among N short requesters: the policy
        // interrupts the accessor, and once the interrupters drain, the
        // interrupted application resumes *before* any later arrival —
        // interruption must not starve the preempted application.
        let mut arb = arbiter(Strategy::Dynamic);
        arb.update_info(info(0, 2048, 100.0, 90.0));
        arb.request_access(AppId(0));
        // Three small applications arrive while 0 holds the file system.
        for i in 1..4 {
            arb.update_info(info(i, 2048, 5.0, 5.0));
            assert_eq!(arb.request_access(AppId(i)), AccessOutcome::MustWait);
        }
        // 0 discovers the interruption request at its next yield point.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(!arb.is_granted(AppId(0)));
        assert!(arb.is_pending(AppId(0)), "interrupted, not forgotten");
        let first = arb.active()[0];
        assert_ne!(first, AppId(0), "a waiting newcomer got the slot");

        // When the interrupter releases, the interrupted application
        // resumes *before* the later waiters (they arrived after it was
        // already holding the file system).
        arb.release(first);
        assert!(
            arb.is_granted(AppId(0)),
            "interrupted application resumes before later waiters"
        );
        // An interruption request exists only at request time: the parked
        // waiters do not preempt the resumed application again.
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        arb.release(AppId(0));

        // The remaining waiters then drain in arrival order.
        let mut drained = Vec::new();
        while let Some(&next) = arb.active().first() {
            drained.push(next);
            arb.release(next);
        }
        let mut expected: Vec<AppId> = (1..4).map(AppId).filter(|a| *a != first).collect();
        expected.sort();
        assert_eq!(drained, expected, "later waiters drain in arrival order");
        assert!(arb.active().is_empty());
        assert!(arb.parked().is_empty());
    }

    #[test]
    fn dynamic_messages_scale_linearly_with_coordination_points() {
        // Every protocol call (`update_info`, `request_access`,
        // `yield_point`, `release`) is exactly one counted message, so the
        // total is an exact linear function of the number of coordination
        // points — no hidden N² chatter as the mix grows.
        for n in [4usize, 8, 16, 32] {
            let mut arb = arbiter(Strategy::Dynamic);
            let yields_per_app = 3u64;
            for i in 0..n {
                arb.update_info(info(i, 256, 10.0, 10.0));
                arb.request_access(AppId(i));
            }
            for round in 0..yields_per_app {
                for i in 0..n {
                    if arb.is_granted(AppId(i)) {
                        arb.yield_point(AppId(i));
                    } else {
                        // Refresh shared information at the coordination
                        // point instead.
                        arb.update_info(info(i, 256, 10.0, 10.0 - round as f64));
                    }
                }
            }
            for i in 0..n {
                arb.release(AppId(i));
            }
            let coordination_points = n as u64      // initial update_info
                + n as u64                          // request_access
                + yields_per_app * n as u64         // one call per point
                + n as u64; // release
            assert_eq!(
                arb.message_count(),
                coordination_points,
                "messages must be exactly linear in coordination points (n = {n})"
            );
        }
    }

    #[test]
    fn double_request_from_same_app_stays_granted() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        assert_eq!(arb.request_access(AppId(0)), AccessOutcome::Granted);
        assert_eq!(arb.active(), vec![AppId(0)]);
    }

    // -- Mechanism engine with the extended policies ---------------------

    #[test]
    fn weighted_priority_preempts_smaller_accessors() {
        let mut arb = Arbiter::with_policy(Box::new(WeightedPriority));
        arb.update_info(info(0, 256, 10.0, 10.0));
        arb.update_info(info(1, 2048, 10.0, 10.0));
        arb.update_info(info(2, 64, 10.0, 10.0));
        arb.request_access(AppId(0));
        // A heavier job arrives: the accessor is asked to yield.
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(arb.is_granted(AppId(1)));
        // A lighter job arrives: no preemption.
        assert_eq!(arb.request_access(AppId(2)), AccessOutcome::MustWait);
        assert_eq!(arb.yield_point(AppId(1)), YieldOutcome::Continue);
        // On release the *heaviest* parked job goes first (0 with 256
        // cores beats 2 with 64), regardless of park reason.
        arb.release(AppId(1));
        assert!(arb.is_granted(AppId(0)));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(2)));
        arb.release(AppId(2));
        assert!(arb.active().is_empty() && arb.parked().is_empty());
    }

    #[test]
    fn weighted_priority_ties_break_by_arrival_order() {
        // Equal weights fall back to FIFO: a later arrival with the same
        // core count must not jump the queue (the documented
        // "earliest arrival breaks ties" rule; app ids are deliberately
        // out of arrival order here).
        let mut arb = Arbiter::with_policy(Box::new(WeightedPriority));
        for (order, id) in [7usize, 3, 5].into_iter().enumerate() {
            arb.update_info(info(id, 128, 10.0, 10.0));
            let _ = arb.request_access(AppId(id));
            if order == 0 {
                assert!(arb.is_granted(AppId(id)));
            }
        }
        arb.release(AppId(7));
        assert!(arb.is_granted(AppId(3)), "first-queued equal-weight wins");
        arb.release(AppId(3));
        assert!(arb.is_granted(AppId(5)));
    }

    #[test]
    fn srpf_serves_the_shortest_remaining_phase_first() {
        let mut arb = Arbiter::with_policy(Box::new(ShortestRemainingFirst));
        arb.update_info(info(0, 512, 20.0, 18.0));
        arb.request_access(AppId(0));
        // A short newcomer (3 s < 18 s remaining) preempts.
        arb.update_info(info(1, 512, 3.0, 3.0));
        assert_eq!(arb.request_access(AppId(1)), AccessOutcome::MustWait);
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(arb.is_granted(AppId(1)));
        // A medium job queues; on release the queue is served by
        // remaining time (5 s before 18 s).
        arb.update_info(info(2, 512, 5.0, 5.0));
        arb.request_access(AppId(2));
        arb.release(AppId(1));
        assert!(arb.is_granted(AppId(2)), "5 s beats the 18 s remainder");
        arb.release(AppId(2));
        assert!(arb.is_granted(AppId(0)));
    }

    #[test]
    fn round_robin_quantum_time_slices_fifo() {
        let mut arb = Arbiter::with_policy(Box::new(RoundRobinQuantum::new(5.0)));
        arb.set_now(SimTime::from_secs(0.0));
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        arb.request_access(AppId(2));
        // Within the quantum the accessor continues…
        arb.set_now(SimTime::from_secs(2.0));
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::Continue);
        // …after it, the accessor yields and the FIFO head goes next.
        arb.set_now(SimTime::from_secs(5.0));
        assert_eq!(arb.yield_point(AppId(0)), YieldOutcome::YieldNow);
        assert!(arb.is_granted(AppId(1)));
        // The preempted application re-queued at the back: after 1 yields,
        // 2 (not 0) is served.
        arb.set_now(SimTime::from_secs(10.0));
        assert_eq!(arb.yield_point(AppId(1)), YieldOutcome::YieldNow);
        assert!(arb.is_granted(AppId(2)));
        // With an empty queue the accessor is never preempted.
        arb.release(AppId(2));
        arb.release(AppId(0));
        arb.release(AppId(1));
        let last = arb.active();
        if let Some(&a) = last.first() {
            arb.set_now(SimTime::from_secs(100.0));
            assert_eq!(arb.yield_point(a), YieldOutcome::Continue);
            arb.release(a);
        }
        assert!(arb.active().is_empty() && arb.parked().is_empty());
    }

    #[test]
    fn custom_policy_select_next_fallback_is_safe() {
        // A policy returning a non-parked application from select_next
        // must not deadlock the engine: the head of the queue is granted
        // instead.
        #[derive(Debug, Clone)]
        struct Confused;
        impl ArbitrationPolicy for Confused {
            fn spec(&self) -> crate::arbitration::PolicySpec {
                crate::arbitration::PolicySpec::new("confused")
            }
            fn on_request(&mut self, _app: AppId, _view: &ArbiterView<'_>) -> RequestDecision {
                RequestDecision::Queue
            }
            fn select_next(
                &mut self,
                _trigger: GrantTrigger,
                _view: &ArbiterView<'_>,
            ) -> Option<AppId> {
                Some(AppId(999))
            }
            fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
                Box::new(self.clone())
            }
        }
        let mut arb = Arbiter::with_policy(Box::new(Confused));
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        arb.release(AppId(0));
        assert!(arb.is_granted(AppId(1)), "fallback grants the queue head");
    }

    #[test]
    fn arbiter_clones_policy_state() {
        let mut arb = Arbiter::with_policy(Box::new(RoundRobinQuantum::new(1.0)));
        arb.set_now(SimTime::from_secs(0.0));
        arb.request_access(AppId(0));
        arb.request_access(AppId(1));
        let mut copy = arb.clone();
        arb.set_now(SimTime::from_secs(2.0));
        copy.set_now(SimTime::from_secs(2.0));
        assert_eq!(arb.yield_point(AppId(0)), copy.yield_point(AppId(0)));
        assert_eq!(arb.active(), copy.active());
        assert_eq!(arb.policy_label(), "rr(1s)");
        assert_eq!(arb.strategy(), None);
        assert_eq!(
            arbiter(Strategy::FcfsSerialize).strategy(),
            Some(Strategy::FcfsSerialize)
        );
    }

    #[test]
    fn set_now_is_monotone_and_message_free() {
        let mut arb = arbiter(Strategy::FcfsSerialize);
        let messages = arb.message_count();
        arb.set_now(SimTime::from_secs(5.0));
        arb.set_now(SimTime::from_secs(3.0));
        assert_eq!(arb.message_count(), messages);
        // The clock never went backwards: a time-aware policy observing it
        // at the next decision sees 5 s (asserted indirectly through the
        // round-robin test above; here we just pin the message count).
    }
}
