//! The streaming observation API: simulation events and observers.
//!
//! [`Session::execute_with`](crate::Session::execute_with) narrates the
//! whole simulation as a typed, time-stamped stream of [`SimEvent`]s:
//! phase boundaries, coordination decisions taken by the
//! [`Arbiter`](crate::Arbiter) (grants, interruptions, bounded delays),
//! and the PFS transfer layer's starts/progress/completions. Anything
//! implementing [`SimObserver`] can subscribe:
//!
//! * [`NullObserver`] — the default; ignores everything and reports
//!   [`SimObserver::wants_progress`]` == false`, so the session skips even
//!   the *computation* of progress samples — observing nothing costs
//!   nothing;
//! * [`TraceRecorder`](crate::TraceRecorder) — records the stream into a
//!   replayable, serializable [`Trace`](crate::Trace);
//! * [`TimelineAggregator`](crate::TimelineAggregator) — derives per-app
//!   Gantt intervals and instantaneous-bandwidth series;
//! * [`ReportBuilder`] — folds the stream into the
//!   [`SessionReport`]; the session builds its own
//!   report this way, so the aggregate view and a recorded trace can never
//!   disagree: they are two folds of the same stream.
//!
//! ## Example: counting interruptions
//!
//! ```
//! use calciom::{Scenario, SimEvent, SimObserver, Strategy};
//! use calciom::{AccessPattern, AppConfig, AppId, Granularity, PfsConfig};
//! use simcore::SimTime;
//!
//! /// An observer that counts how often the arbiter preempted an access.
//! #[derive(Default)]
//! struct InterruptCounter {
//!     interruptions: u32,
//! }
//!
//! impl SimObserver for InterruptCounter {
//!     fn on_event(&mut self, _at: SimTime, event: &SimEvent) {
//!         if matches!(event, SimEvent::Interrupted { .. }) {
//!             self.interruptions += 1;
//!         }
//!     }
//! }
//!
//! let scenario = Scenario::builder(PfsConfig::grid5000_rennes())
//!     .app(AppConfig::new(AppId(0), "big", 336, AccessPattern::strided(2.0e6, 8)))
//!     .app(AppConfig::new(AppId(1), "small", 48, AccessPattern::contiguous(8.0e6))
//!         .starting_at_secs(2.0))
//!     .strategy(Strategy::Interrupt)
//!     .granularity(Granularity::Round)
//!     .build()
//!     .unwrap();
//!
//! let mut counter = InterruptCounter::default();
//! let report = calciom::Session::new(&scenario)
//!     .unwrap()
//!     .execute_with(&mut counter)
//!     .unwrap();
//! assert!(counter.interruptions > 0, "the big writer was preempted");
//! assert_eq!(report.apps.len(), 2);
//! ```

use crate::scenario::Scenario;
use crate::session::{AppReport, PhaseResult, SessionReport};
use crate::strategy::Strategy;
use pfs::{AppId, TransferId};
use serde::{Deserialize, Serialize};
use simcore::time::SimTime;
use std::collections::BTreeMap;

/// Why an application was granted access to the file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrantKind {
    /// Granted at request time (nobody was in the way, or the strategy
    /// tolerates concurrent access).
    Immediate,
    /// Granted after waiting in the arbiter's queue (FCFS / interrupt /
    /// dynamic serialization).
    AfterWait,
    /// The bounded-delay budget expired and the application proceeded,
    /// overlapping with the current accessor ([`Strategy::Delay`]).
    DelayElapsed,
}

impl GrantKind {
    /// Stable label used by the trace codec.
    pub fn label(&self) -> &'static str {
        match self {
            GrantKind::Immediate => "immediate",
            GrantKind::AfterWait => "after-wait",
            GrantKind::DelayElapsed => "delay-elapsed",
        }
    }

    /// Parses a label produced by [`GrantKind::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "immediate" => Some(GrantKind::Immediate),
            "after-wait" => Some(GrantKind::AfterWait),
            "delay-elapsed" => Some(GrantKind::DelayElapsed),
            _ => None,
        }
    }
}

/// One event of the simulation's observable stream.
///
/// Events are emitted in simulated-time order; several events may share a
/// time stamp (their relative order is the deterministic execution order
/// of the session loop).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// An application entered an I/O phase (at its requested start time).
    PhaseStarted {
        /// The application.
        app: AppId,
        /// 0-based phase index.
        phase: u32,
    },
    /// The application asked the arbiter for access to the file system.
    AccessRequested {
        /// The application.
        app: AppId,
    },
    /// The application was granted access and proceeds with its I/O.
    AccessGranted {
        /// The application.
        app: AppId,
        /// Strategy-specific detail: how the grant came about.
        grant: GrantKind,
    },
    /// The arbiter answered "wait, but at most this long" — the
    /// bounded-delay strategy's outcome.
    DelayBounded {
        /// The application.
        app: AppId,
        /// The wait budget, in seconds.
        max_wait_secs: f64,
    },
    /// The application yielded at a coordination point after an
    /// interruption request (its I/O is paused).
    Interrupted {
        /// The application.
        app: AppId,
    },
    /// A previously interrupted application was re-granted access and
    /// resumes its I/O.
    Resumed {
        /// The application.
        app: AppId,
    },
    /// A collective-buffering communication (shuffle) step began.
    CommStarted {
        /// The application.
        app: AppId,
        /// Duration of the shuffle step, in seconds.
        seconds: f64,
    },
    /// The in-flight communication step completed.
    CommCompleted {
        /// The application.
        app: AppId,
    },
    /// An atomic write was submitted to the parallel file system.
    TransferStarted {
        /// The owning application.
        app: AppId,
        /// PFS handle of the transfer.
        transfer: TransferId,
        /// Bytes the transfer will write.
        bytes: f64,
    },
    /// Periodic progress sample of an in-flight transfer (emitted at every
    /// event-loop step while an observer wants progress, capturing each
    /// piecewise-constant bandwidth plateau).
    TransferProgress {
        /// The owning application.
        app: AppId,
        /// PFS handle of the transfer.
        transfer: TransferId,
        /// Bytes written so far.
        transferred: f64,
        /// Current aggregate rate across all servers, in bytes/s.
        rate: f64,
    },
    /// The transfer wrote its last byte.
    TransferCompleted {
        /// The owning application.
        app: AppId,
        /// PFS handle of the transfer.
        transfer: TransferId,
        /// Bytes the transfer wrote.
        bytes: f64,
    },
    /// The application finished an I/O phase (all steps executed).
    PhaseFinished {
        /// The application.
        app: AppId,
        /// 0-based phase index.
        phase: u32,
        /// Bytes the phase wrote to the file system.
        bytes: f64,
    },
    /// The whole session completed.
    SessionEnded {
        /// Time at which the last application finished.
        makespan: SimTime,
        /// Coordination messages exchanged over the whole run.
        coordination_messages: u64,
    },
}

impl SimEvent {
    /// The application the event concerns, if any ([`SimEvent::SessionEnded`]
    /// is the only session-wide event).
    pub fn app(&self) -> Option<AppId> {
        match *self {
            SimEvent::PhaseStarted { app, .. }
            | SimEvent::AccessRequested { app }
            | SimEvent::AccessGranted { app, .. }
            | SimEvent::DelayBounded { app, .. }
            | SimEvent::Interrupted { app }
            | SimEvent::Resumed { app }
            | SimEvent::CommStarted { app, .. }
            | SimEvent::CommCompleted { app }
            | SimEvent::TransferStarted { app, .. }
            | SimEvent::TransferProgress { app, .. }
            | SimEvent::TransferCompleted { app, .. }
            | SimEvent::PhaseFinished { app, .. } => Some(app),
            SimEvent::SessionEnded { .. } => None,
        }
    }

    /// Stable kind label used by the trace codec and log output.
    pub fn kind(&self) -> &'static str {
        match self {
            SimEvent::PhaseStarted { .. } => "phase-started",
            SimEvent::AccessRequested { .. } => "access-requested",
            SimEvent::AccessGranted { .. } => "access-granted",
            SimEvent::DelayBounded { .. } => "delay-bounded",
            SimEvent::Interrupted { .. } => "interrupted",
            SimEvent::Resumed { .. } => "resumed",
            SimEvent::CommStarted { .. } => "comm-started",
            SimEvent::CommCompleted { .. } => "comm-completed",
            SimEvent::TransferStarted { .. } => "transfer-started",
            SimEvent::TransferProgress { .. } => "transfer-progress",
            SimEvent::TransferCompleted { .. } => "transfer-completed",
            SimEvent::PhaseFinished { .. } => "phase-finished",
            SimEvent::SessionEnded { .. } => "session-ended",
        }
    }
}

/// A consumer of the simulation's event stream.
///
/// Implementations receive every event, in emission order, with the
/// simulated time at which it happened. See the [module docs](self) for a
/// complete worked example and the shipped observers.
pub trait SimObserver {
    /// Called for every emitted event.
    fn on_event(&mut self, at: SimTime, event: &SimEvent);

    /// Whether the session should compute and emit
    /// [`SimEvent::TransferProgress`] samples. Sampling queries the fluid
    /// network at every event-loop step; observers that ignore progress
    /// (like [`NullObserver`]) opt out so the session skips the work
    /// entirely.
    fn wants_progress(&self) -> bool {
        true
    }
}

impl<O: SimObserver + ?Sized> SimObserver for &mut O {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        (**self).on_event(at, event);
    }
    fn wants_progress(&self) -> bool {
        (**self).wants_progress()
    }
}

/// The do-nothing observer: the default of
/// [`Session::execute`](crate::Session::execute). Every callback is an
/// empty inline function
/// and [`SimObserver::wants_progress`] is `false`, so observing with it
/// compiles down to the unobserved session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SimObserver for NullObserver {
    #[inline(always)]
    fn on_event(&mut self, _at: SimTime, _event: &SimEvent) {}

    #[inline(always)]
    fn wants_progress(&self) -> bool {
        false
    }
}

/// Static description of one application as seen by the observation layer:
/// the report fields that do not come from the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSeed {
    /// The application.
    pub app: AppId,
    /// Display name.
    pub name: String,
    /// Number of processes.
    pub procs: u32,
    /// Analytic stand-alone estimate for one phase, in seconds.
    pub alone_estimate_secs: f64,
}

impl AppSeed {
    /// Seeds for every application of a scenario, in scenario order.
    pub fn for_scenario(scenario: &Scenario) -> Vec<AppSeed> {
        scenario
            .apps
            .iter()
            .map(|a| AppSeed {
                app: a.id,
                name: a.name.clone(),
                procs: a.procs,
                alone_estimate_secs: a.estimate_alone_seconds(&scenario.pfs),
            })
            .collect()
    }
}

/// Per-application, per-phase accumulator of the report fold.
#[derive(Debug, Clone, Default)]
struct PhaseAccum {
    requested_start: Option<SimTime>,
    io_start: Option<SimTime>,
    comm_secs: f64,
    write_secs: f64,
    wait_secs: f64,
    wait_from: Option<SimTime>,
    write_from: BTreeMap<TransferId, SimTime>,
}

/// Folds the event stream into a [`SessionReport`].
///
/// This is how [`Session::execute_with`](crate::Session::execute_with)
/// itself produces its report — the aggregate is *derived* from the same
/// stream any other observer sees, so a recorded
/// [`Trace`](crate::Trace) replayed through a fresh `ReportBuilder`
/// reproduces the original report bit for bit.
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    strategy: Strategy,
    policy_label: String,
    seeds: Vec<AppSeed>,
    accums: BTreeMap<AppId, PhaseAccum>,
    results: BTreeMap<AppId, Vec<PhaseResult>>,
    makespan: SimTime,
    coordination_messages: u64,
}

impl ReportBuilder {
    /// A builder for the given scenario (strategy, policy label and
    /// per-app metadata are taken from it; everything else comes from the
    /// events).
    pub fn new(scenario: &Scenario) -> Self {
        ReportBuilder::seeded(
            scenario.strategy,
            scenario.policy_label(),
            AppSeed::for_scenario(scenario),
        )
    }

    /// A builder from explicit metadata — the entry point trace replay
    /// uses, where no `Scenario` is at hand.
    pub fn seeded(strategy: Strategy, policy_label: String, seeds: Vec<AppSeed>) -> Self {
        ReportBuilder {
            strategy,
            policy_label,
            seeds,
            accums: BTreeMap::new(),
            results: BTreeMap::new(),
            makespan: SimTime::ZERO,
            coordination_messages: 0,
        }
    }

    /// Finishes the fold and returns the report. Applications appear in
    /// seed (scenario) order.
    pub fn finish(self) -> SessionReport {
        let mut results = self.results;
        SessionReport {
            strategy: self.strategy,
            policy_label: self.policy_label,
            apps: self
                .seeds
                .into_iter()
                .map(|seed| AppReport {
                    app: seed.app,
                    name: seed.name,
                    procs: seed.procs,
                    alone_estimate_secs: seed.alone_estimate_secs,
                    phases: results.remove(&seed.app).unwrap_or_default(),
                })
                .collect(),
            coordination_messages: self.coordination_messages,
            makespan: self.makespan,
        }
    }

    fn accum(&mut self, app: AppId) -> &mut PhaseAccum {
        self.accums.entry(app).or_default()
    }
}

impl SimObserver for ReportBuilder {
    fn on_event(&mut self, at: SimTime, event: &SimEvent) {
        match *event {
            SimEvent::PhaseStarted { app, .. } => {
                let acc = self.accum(app);
                *acc = PhaseAccum {
                    requested_start: Some(at),
                    ..PhaseAccum::default()
                };
            }
            SimEvent::AccessRequested { app } | SimEvent::Interrupted { app } => {
                self.accum(app).wait_from = Some(at);
            }
            SimEvent::AccessGranted { app, .. } | SimEvent::Resumed { app } => {
                let acc = self.accum(app);
                if let Some(from) = acc.wait_from.take() {
                    acc.wait_secs += at.saturating_since(from).as_secs();
                }
            }
            SimEvent::DelayBounded { .. } => {}
            SimEvent::CommStarted { app, seconds } => {
                let acc = self.accum(app);
                acc.io_start.get_or_insert(at);
                acc.comm_secs += seconds;
            }
            SimEvent::CommCompleted { .. } => {}
            SimEvent::TransferStarted { app, transfer, .. } => {
                let acc = self.accum(app);
                acc.io_start.get_or_insert(at);
                acc.write_from.insert(transfer, at);
            }
            SimEvent::TransferProgress { .. } => {}
            SimEvent::TransferCompleted { app, transfer, .. } => {
                let acc = self.accum(app);
                if let Some(from) = acc.write_from.remove(&transfer) {
                    acc.write_secs += at.saturating_since(from).as_secs();
                }
            }
            SimEvent::PhaseFinished { app, phase, bytes } => {
                // No shape assertions here: this fold also replays decoded
                // traces, whose event sequences are syntax-checked but not
                // semantically validated. A stream that genuinely came
                // from a session always nests phase events; anything else
                // gets a best-effort report rather than a panic.
                let acc = std::mem::take(self.accum(app));
                self.results.entry(app).or_default().push(PhaseResult {
                    app,
                    phase,
                    requested_start: acc.requested_start.unwrap_or(at),
                    io_start: acc.io_start.unwrap_or(at),
                    end: at,
                    bytes,
                    comm_seconds: acc.comm_secs,
                    write_seconds: acc.write_secs,
                    wait_seconds: acc.wait_secs,
                });
            }
            SimEvent::SessionEnded {
                makespan,
                coordination_messages,
            } => {
                self.makespan = makespan;
                self.coordination_messages = coordination_messages;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn null_observer_opts_out_of_progress() {
        let mut null = NullObserver;
        assert!(!null.wants_progress());
        // And forwarding through a mutable reference preserves the answer.
        let forwarded: &mut NullObserver = &mut null;
        assert!(!SimObserver::wants_progress(&forwarded));
        null.on_event(t(1.0), &SimEvent::AccessRequested { app: AppId(0) });
    }

    #[test]
    fn event_accessors_cover_every_variant() {
        let events = [
            SimEvent::PhaseStarted {
                app: AppId(1),
                phase: 0,
            },
            SimEvent::AccessRequested { app: AppId(1) },
            SimEvent::AccessGranted {
                app: AppId(1),
                grant: GrantKind::Immediate,
            },
            SimEvent::DelayBounded {
                app: AppId(1),
                max_wait_secs: 2.0,
            },
            SimEvent::Interrupted { app: AppId(1) },
            SimEvent::Resumed { app: AppId(1) },
            SimEvent::CommStarted {
                app: AppId(1),
                seconds: 0.5,
            },
            SimEvent::CommCompleted { app: AppId(1) },
            SimEvent::TransferStarted {
                app: AppId(1),
                transfer: TransferId(0),
                bytes: 1.0,
            },
            SimEvent::TransferProgress {
                app: AppId(1),
                transfer: TransferId(0),
                transferred: 0.5,
                rate: 1.0,
            },
            SimEvent::TransferCompleted {
                app: AppId(1),
                transfer: TransferId(0),
                bytes: 1.0,
            },
            SimEvent::PhaseFinished {
                app: AppId(1),
                phase: 0,
                bytes: 1.0,
            },
        ];
        let mut kinds = std::collections::BTreeSet::new();
        for e in &events {
            assert_eq!(e.app(), Some(AppId(1)), "{}", e.kind());
            kinds.insert(e.kind());
        }
        let ended = SimEvent::SessionEnded {
            makespan: t(1.0),
            coordination_messages: 3,
        };
        assert_eq!(ended.app(), None);
        kinds.insert(ended.kind());
        assert_eq!(kinds.len(), 13, "kind labels are distinct");
    }

    #[test]
    fn grant_kind_labels_round_trip() {
        for kind in [
            GrantKind::Immediate,
            GrantKind::AfterWait,
            GrantKind::DelayElapsed,
        ] {
            assert_eq!(GrantKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(GrantKind::from_label("nope"), None);
    }

    #[test]
    fn report_builder_folds_a_minimal_stream() {
        let seeds = vec![AppSeed {
            app: AppId(0),
            name: "A".into(),
            procs: 8,
            alone_estimate_secs: 2.0,
        }];
        let mut builder = ReportBuilder::seeded(Strategy::FcfsSerialize, "fcfs".to_string(), seeds);
        let app = AppId(0);
        let tid = TransferId(0);
        builder.on_event(t(1.0), &SimEvent::PhaseStarted { app, phase: 0 });
        builder.on_event(t(1.0), &SimEvent::AccessRequested { app });
        builder.on_event(
            t(3.0),
            &SimEvent::AccessGranted {
                app,
                grant: GrantKind::AfterWait,
            },
        );
        builder.on_event(t(3.0), &SimEvent::CommStarted { app, seconds: 0.5 });
        builder.on_event(t(3.5), &SimEvent::CommCompleted { app });
        builder.on_event(
            t(3.5),
            &SimEvent::TransferStarted {
                app,
                transfer: tid,
                bytes: 100.0,
            },
        );
        builder.on_event(
            t(5.5),
            &SimEvent::TransferCompleted {
                app,
                transfer: tid,
                bytes: 100.0,
            },
        );
        builder.on_event(
            t(5.5),
            &SimEvent::PhaseFinished {
                app,
                phase: 0,
                bytes: 100.0,
            },
        );
        builder.on_event(
            t(5.5),
            &SimEvent::SessionEnded {
                makespan: t(5.5),
                coordination_messages: 7,
            },
        );
        let report = builder.finish();
        assert_eq!(report.strategy, Strategy::FcfsSerialize);
        assert_eq!(report.coordination_messages, 7);
        assert_eq!(report.makespan, t(5.5));
        let phase = report.apps[0].first_phase();
        assert_eq!(phase.requested_start, t(1.0));
        assert_eq!(phase.io_start, t(3.0));
        assert_eq!(phase.end, t(5.5));
        assert_eq!(phase.wait_seconds, 2.0);
        assert_eq!(phase.comm_seconds, 0.5);
        assert_eq!(phase.write_seconds, 2.0);
        assert_eq!(phase.bytes, 100.0);
    }

    #[test]
    fn report_builder_tolerates_apps_without_events() {
        let seeds = vec![AppSeed {
            app: AppId(3),
            name: "silent".into(),
            procs: 4,
            alone_estimate_secs: 1.0,
        }];
        let report =
            ReportBuilder::seeded(Strategy::Interfere, "interfering".to_string(), seeds).finish();
        assert_eq!(report.apps.len(), 1);
        assert!(report.apps[0].phases.is_empty());
        assert_eq!(report.makespan, SimTime::ZERO);
    }
}
