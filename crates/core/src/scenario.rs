//! Serializable scenario descriptions.
//!
//! A [`Scenario`] is the complete, self-contained description of one
//! simulated experiment: the shared file system, the applications, the
//! coordination strategy/granularity/policy, and the overheads. It is the
//! input of [`Session::run`](crate::Session::run), the unit the `iobench`
//! sweeps fan out across threads, and the thing the experiment registry
//! stores — one description type shared by every reproduced figure.
//!
//! Scenarios are built fluently with [`ScenarioBuilder`] and round-trip
//! through a plain-text `key = value` encoding ([`Scenario::to_text`] /
//! [`Scenario::from_text`]). The simulation is deterministic (integer-tick
//! clock, no randomness), so a decoded scenario reproduces its original's
//! [`SessionReport`] bit for bit — the property the
//! top-level round-trip tests assert.

use crate::arbitration::{PolicyRegistry, PolicySpec};
use crate::cluster::ClusterSpec;
use crate::error::{ConfigError, Error, ScenarioParseError};
use crate::metrics::EfficiencyMetric;
use crate::policy::DynamicPolicy;
use crate::session::{Session, SessionReport};
use crate::strategy::Strategy;
use mpiio::{AccessPattern, AppConfig, CollectiveConfig, Granularity};
use pfs::{AppId, CacheConfig, PfsConfig, SharePolicy};
use serde::{Deserialize, Serialize};
use simcore::fair::SharingModel;
use simcore::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Header line of the textual scenario encoding.
const HEADER: &str = "calciom-scenario v1";

/// Full description of one simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The shared parallel file system.
    pub pfs: PfsConfig,
    /// The applications running concurrently.
    pub apps: Vec<AppConfig>,
    /// The coordination strategy in force (ignored when
    /// [`Scenario::arbitration`] names a policy).
    pub strategy: Strategy,
    /// Free-form arbitration policy, resolved by name through the
    /// standard [`PolicyRegistry`] at session-build time. `None` (the
    /// default, and what every legacy scenario decodes to) means "use
    /// [`Scenario::strategy`]'s built-in policy".
    pub arbitration: Option<PolicySpec>,
    /// Which bandwidth-sharing medium the file system simulates flows on.
    /// [`SharingModel::MaxMin`] (the default, and what every legacy
    /// scenario decodes to) is the exact max-min fluid solver;
    /// [`SharingModel::FairFast`] is the `O(log n)` virtual-time model.
    #[serde(default)]
    pub medium: SharingModel,
    /// Hierarchical multi-machine topology: per-machine leaf arbiters
    /// under a slot-owning root (see
    /// [`ClusterTransport`](crate::ClusterTransport)). `None` (the
    /// default, and what every legacy scenario decodes to) runs the flat,
    /// single-arbiter code path.
    #[serde(default)]
    pub cluster: Option<ClusterSpec>,
    /// How often applications issue coordination calls (interruption
    /// granularity).
    pub granularity: Granularity,
    /// Dynamic-selection policy (consulted only when `strategy` is
    /// [`Strategy::Dynamic`]).
    pub policy: DynamicPolicy,
    /// Latency of one coordination exchange (grant/resume notification).
    pub coordination_overhead: SimDuration,
    /// Hard bound on simulated time; exceeding it aborts the run with an
    /// error (guards against configuration mistakes).
    pub horizon: SimDuration,
}

impl Scenario {
    /// Creates a scenario with the default strategy (interfering, i.e. no
    /// coordination), round-level granularity, and the CPU·seconds dynamic
    /// policy.
    pub fn new(pfs: PfsConfig, apps: Vec<AppConfig>) -> Self {
        Scenario {
            pfs,
            apps,
            strategy: Strategy::Interfere,
            arbitration: None,
            medium: SharingModel::default(),
            cluster: None,
            granularity: Granularity::Round,
            policy: DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
            coordination_overhead: SimDuration::from_millis(1.0),
            horizon: SimDuration::from_secs(86_400.0),
        }
    }

    /// Starts a fluent builder for a scenario on the given file system.
    pub fn builder(pfs: PfsConfig) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario::new(pfs, Vec::new()),
        }
    }

    /// Display label of the arbitration in force: the named policy's
    /// spec text when [`Scenario::arbitration`] is set, the strategy's
    /// parameter-carrying label otherwise. This is the string that ends
    /// up in [`SessionReport::policy_label`](crate::SessionReport),
    /// figure series and trace headers.
    pub fn policy_label(&self) -> String {
        match &self.arbitration {
            Some(spec) => spec.to_text(),
            None => self.strategy.label(),
        }
    }

    /// Resolves the arbitration in force into a boxed policy: the named
    /// registry policy when [`Scenario::arbitration`] is set, the legacy
    /// strategy's built-in otherwise. This is the *single* resolution
    /// path — [`Session`] construction installs exactly what this
    /// returns, and [`Scenario::validate`] goes through it too, so a typo
    /// in a policy name surfaces as a validation error.
    pub fn build_policy(
        &self,
    ) -> Result<Box<dyn crate::arbitration::ArbitrationPolicy>, ConfigError> {
        match &self.arbitration {
            None => Ok(crate::arbitration::builtin_policy(
                self.strategy,
                self.policy,
            )),
            Some(spec) => PolicyRegistry::standard()
                .build(spec, &self.policy)
                .map_err(ConfigError::Policy),
        }
    }

    /// Validates the whole configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.validate_workload()?;
        self.build_policy().map(drop)
    }

    /// The policy-free half of [`Scenario::validate`]: file system and
    /// application checks. Session construction uses this plus one
    /// [`Scenario::build_policy`] call, so the policy is resolved exactly
    /// once per session.
    pub(crate) fn validate_workload(&self) -> Result<(), ConfigError> {
        self.pfs.validate()?;
        if self.apps.is_empty() {
            return Err(ConfigError::NoApplications);
        }
        let mut seen = std::collections::BTreeSet::new();
        for app in &self.apps {
            app.validate()?;
            if !seen.insert(app.id) {
                return Err(ConfigError::DuplicateApp(app.id));
            }
        }
        if let Some(cluster) = &self.cluster {
            cluster
                .validate(self.apps.iter().map(|a| a.id))
                .map_err(ConfigError::Cluster)?;
        }
        Ok(())
    }

    /// Runs the scenario to completion on the in-process
    /// [`LocalTransport`](crate::LocalTransport) — or, when the scenario
    /// carries a [`ClusterSpec`], on the hierarchical
    /// [`ClusterTransport`](crate::ClusterTransport) (flat transports
    /// reject cluster topologies rather than silently ignoring them).
    pub fn run(&self) -> Result<SessionReport, Error> {
        if self.cluster.is_some() {
            Session::<crate::ClusterTransport>::with_transport(self)?.execute()
        } else {
            Session::run(self)
        }
    }

    /// Runs the scenario on the thread-safe
    /// [`SharedTransport`](crate::SharedTransport) (or the equally
    /// thread-safe [`ClusterTransport`](crate::ClusterTransport) when a
    /// cluster topology is present). The simulation is deterministic, so
    /// the report is identical to [`Scenario::run`]'s; this entry point
    /// exists so that whole sessions can be built once and executed on
    /// worker threads (see `iobench::parallel`).
    pub fn run_shared(&self) -> Result<SessionReport, Error> {
        if self.cluster.is_some() {
            Session::<crate::ClusterTransport>::with_transport(self)?.execute()
        } else {
            Session::<crate::SharedTransport>::with_transport(self)?.execute()
        }
    }

    /// Serializes the scenario to the plain-text `key = value` encoding.
    ///
    /// Floating-point fields are written with Rust's shortest round-trip
    /// representation, so [`Scenario::from_text`] reconstructs the exact
    /// same values (and therefore the exact same simulation).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let kv = |out: &mut String, k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        out.push_str(HEADER);
        out.push('\n');
        kv(&mut out, "strategy", strategy_to_text(self.strategy));
        // Optional key: legacy documents (and every scenario without a
        // named policy) neither emit nor require it, so their encoding is
        // byte-identical to the pre-policy-layer format.
        if let Some(spec) = &self.arbitration {
            kv(&mut out, "arbitration", spec.to_text());
        }
        // Same optional-key convention: only non-default media are
        // written, so legacy (max-min) scenarios stay byte-identical.
        if self.medium != SharingModel::default() {
            kv(&mut out, "medium", self.medium.label().to_string());
        }
        // Optional key again: flat scenarios (the default) emit nothing,
        // so pre-cluster documents stay byte-identical.
        if let Some(cluster) = &self.cluster {
            kv(&mut out, "cluster", cluster.to_text());
        }
        kv(
            &mut out,
            "granularity",
            self.granularity.label().to_string(),
        );
        kv(
            &mut out,
            "coordination_overhead_ticks",
            self.coordination_overhead.ticks().to_string(),
        );
        kv(&mut out, "horizon_ticks", self.horizon.ticks().to_string());

        out.push_str("\n[policy]\n");
        kv(&mut out, "metric", self.policy.metric.label().to_string());
        kv(
            &mut out,
            "consider_interference",
            self.policy.consider_interference.to_string(),
        );
        kv(
            &mut out,
            "interference_gamma",
            format!("{:?}", self.policy.interference_gamma),
        );

        out.push_str("\n[pfs]\n");
        kv(&mut out, "num_servers", self.pfs.num_servers.to_string());
        kv(&mut out, "server_bw", format!("{:?}", self.pfs.server_bw));
        kv(
            &mut out,
            "cache",
            match &self.pfs.cache {
                None => "none".to_string(),
                Some(c) => format!("{:?} {:?} {:?}", c.capacity_bytes, c.absorb_bw, c.drain_bw),
            },
        );
        kv(
            &mut out,
            "interference_gamma",
            format!("{:?}", self.pfs.interference_gamma),
        );
        kv(
            &mut out,
            "process_link_bw",
            format!("{:?}", self.pfs.process_link_bw),
        );
        kv(
            &mut out,
            "interconnect_bw",
            format!("{:?}", self.pfs.interconnect_bw),
        );
        kv(
            &mut out,
            "share_policy",
            match self.pfs.share_policy {
                SharePolicy::ProportionalToProcesses => "proportional-to-processes",
                SharePolicy::EqualPerApplication => "equal-per-application",
            }
            .to_string(),
        );

        for app in &self.apps {
            out.push_str("\n[app]\n");
            kv(&mut out, "id", app.id.0.to_string());
            kv(&mut out, "name", quote(&app.name));
            kv(&mut out, "procs", app.procs.to_string());
            kv(
                &mut out,
                "pattern",
                match app.pattern {
                    AccessPattern::Contiguous { bytes_per_proc } => {
                        format!("contiguous {bytes_per_proc:?}")
                    }
                    AccessPattern::Strided {
                        block_size,
                        block_count,
                    } => format!("strided {block_size:?} {block_count}"),
                },
            );
            kv(&mut out, "files", app.files.to_string());
            kv(
                &mut out,
                "aggregators",
                app.collective.aggregators.to_string(),
            );
            kv(
                &mut out,
                "buffer_bytes",
                format!("{:?}", app.collective.buffer_bytes),
            );
            kv(
                &mut out,
                "shuffle_bw",
                format!("{:?}", app.collective.shuffle_bw),
            );
            kv(&mut out, "start_ticks", app.start.ticks().to_string());
            kv(&mut out, "phases", app.phases.to_string());
            kv(
                &mut out,
                "phase_interval_ticks",
                app.phase_interval.ticks().to_string(),
            );
        }
        out
    }

    /// Parses the encoding produced by [`Scenario::to_text`].
    pub fn from_text(text: &str) -> Result<Scenario, ScenarioParseError> {
        #[derive(PartialEq, Clone, Copy)]
        enum Section {
            Top,
            Policy,
            Pfs,
            App,
        }

        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, header)) if header.trim() == HEADER => {}
            _ => return Err(ScenarioParseError::BadHeader),
        }

        let mut section = Section::Top;
        let mut top = BTreeMap::new();
        let mut policy = BTreeMap::new();
        let mut pfs = BTreeMap::new();
        let mut apps: Vec<BTreeMap<String, String>> = Vec::new();
        for (lineno, raw) in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name {
                    "policy" => Section::Policy,
                    "pfs" => Section::Pfs,
                    "app" => {
                        apps.push(BTreeMap::new());
                        Section::App
                    }
                    other => return Err(ScenarioParseError::UnknownSection(other.to_string())),
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(ScenarioParseError::Malformed { line: lineno + 1 })?;
            let map = match section {
                Section::Top => &mut top,
                Section::Policy => &mut policy,
                Section::Pfs => &mut pfs,
                // simlint: allow(R4, section only becomes App when a header pushed an entry)
                Section::App => apps.last_mut().expect("entered [app] section"),
            };
            let key = key.trim().to_string();
            if map.insert(key.clone(), value.trim().to_string()).is_some() {
                // Last-wins would silently drop a hand-edited line; be as
                // strict about duplicates as about unknown keys.
                return Err(ScenarioParseError::DuplicateKey(key));
            }
        }

        let scenario = Scenario {
            strategy: strategy_from_text(&take(&mut top, "strategy")?)?,
            arbitration: top
                .remove("arbitration")
                .map(|v| PolicySpec::from_text(&v).map_err(|_| invalid("arbitration", &v)))
                .transpose()?,
            medium: top
                .remove("medium")
                .map(|v| SharingModel::from_label(&v).ok_or_else(|| invalid("medium", &v)))
                .transpose()?
                .unwrap_or_default(),
            cluster: top
                .remove("cluster")
                .map(|v| ClusterSpec::from_text(&v))
                .transpose()?,
            granularity: {
                let v = take(&mut top, "granularity")?;
                Granularity::from_label(&v).ok_or_else(|| invalid("granularity", &v))?
            },
            coordination_overhead: SimDuration::from_ticks(parse_num(
                &mut top,
                "coordination_overhead_ticks",
            )?),
            horizon: SimDuration::from_ticks(parse_num(&mut top, "horizon_ticks")?),
            policy: DynamicPolicy {
                metric: {
                    let v = take(&mut policy, "metric")?;
                    EfficiencyMetric::from_label(&v).ok_or_else(|| invalid("metric", &v))?
                },
                consider_interference: parse_num(&mut policy, "consider_interference")?,
                interference_gamma: parse_num(&mut policy, "interference_gamma")?,
            },
            pfs: PfsConfig {
                num_servers: parse_num(&mut pfs, "num_servers")?,
                server_bw: parse_num(&mut pfs, "server_bw")?,
                cache: {
                    let v = take(&mut pfs, "cache")?;
                    parse_cache(&v)?
                },
                interference_gamma: parse_num(&mut pfs, "interference_gamma")?,
                process_link_bw: parse_num(&mut pfs, "process_link_bw")?,
                interconnect_bw: parse_num(&mut pfs, "interconnect_bw")?,
                share_policy: {
                    let v = take(&mut pfs, "share_policy")?;
                    match v.as_str() {
                        "proportional-to-processes" => SharePolicy::ProportionalToProcesses,
                        "equal-per-application" => SharePolicy::EqualPerApplication,
                        _ => return Err(invalid("share_policy", &v)),
                    }
                },
            },
            apps: apps
                .into_iter()
                .map(|mut map| {
                    let app = AppConfig {
                        id: AppId(parse_num(&mut map, "id")?),
                        name: unquote(&take(&mut map, "name")?)?,
                        procs: parse_num(&mut map, "procs")?,
                        pattern: {
                            let v = take(&mut map, "pattern")?;
                            parse_pattern(&v)?
                        },
                        files: parse_num(&mut map, "files")?,
                        collective: CollectiveConfig {
                            aggregators: parse_num(&mut map, "aggregators")?,
                            buffer_bytes: parse_num(&mut map, "buffer_bytes")?,
                            shuffle_bw: parse_num(&mut map, "shuffle_bw")?,
                        },
                        start: SimTime::from_ticks(parse_num(&mut map, "start_ticks")?),
                        phases: parse_num(&mut map, "phases")?,
                        phase_interval: SimDuration::from_ticks(parse_num(
                            &mut map,
                            "phase_interval_ticks",
                        )?),
                    };
                    reject_leftovers(map)?;
                    Ok(app)
                })
                .collect::<Result<Vec<_>, ScenarioParseError>>()?,
        };
        for map in [top, policy, pfs] {
            reject_leftovers(map)?;
        }
        Ok(scenario)
    }
}

/// Fluent constructor for [`Scenario`] — the one place experiments,
/// examples and tests assemble their configuration.
///
/// ```
/// use calciom::{Scenario, Strategy};
/// use mpiio::{AccessPattern, AppConfig};
/// use pfs::{AppId, PfsConfig};
///
/// let scenario = Scenario::builder(PfsConfig::grid5000_rennes())
///     .app(AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0e6)))
///     .app(AppConfig::new(AppId(1), "B", 336, AccessPattern::contiguous(16.0e6)))
///     .strategy(Strategy::FcfsSerialize)
///     .build()
///     .unwrap();
/// let report = scenario.run().unwrap();
/// assert_eq!(report.apps.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Adds one application.
    pub fn app(mut self, app: AppConfig) -> Self {
        self.scenario.apps.push(app);
        self
    }

    /// Adds several applications.
    pub fn apps(mut self, apps: impl IntoIterator<Item = AppConfig>) -> Self {
        self.scenario.apps.extend(apps);
        self
    }

    /// Sets the coordination strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.scenario.strategy = strategy;
        self
    }

    /// Selects the arbitration policy by [`PolicySpec`] — any name the
    /// standard [`PolicyRegistry`] knows, including the extended policies
    /// no [`Strategy`] variant expresses (`priority(w=cores)`, `srpf`,
    /// `rr(10s)`). Overrides [`ScenarioBuilder::strategy`]. The name is
    /// resolved (and a bad spec rejected) at [`ScenarioBuilder::build`]
    /// time.
    pub fn arbitration(mut self, spec: PolicySpec) -> Self {
        self.scenario.arbitration = Some(spec);
        self
    }

    /// Places the applications on a hierarchical multi-machine topology:
    /// one leaf arbiter per machine under a slot-owning root, with
    /// modeled cross-arbiter message latency (see
    /// [`ClusterTransport`](crate::ClusterTransport)). The topology is
    /// validated against the application list at
    /// [`ScenarioBuilder::build`] time.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.scenario.cluster = Some(spec);
        self
    }

    /// Selects the bandwidth-sharing medium the file system runs on.
    /// Defaults to [`SharingModel::MaxMin`]; [`SharingModel::FairFast`]
    /// trades exactness on unequal-share topologies for `O(log n)`
    /// flow mutations (the machine-scale sweeps use it).
    pub fn medium(mut self, medium: SharingModel) -> Self {
        self.scenario.medium = medium;
        self
    }

    /// Sets the coordination granularity.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.scenario.granularity = granularity;
        self
    }

    /// Sets the dynamic policy.
    pub fn policy(mut self, policy: DynamicPolicy) -> Self {
        self.scenario.policy = policy;
        self
    }

    /// Sets the coordination message latency.
    pub fn coordination_overhead(mut self, overhead: SimDuration) -> Self {
        self.scenario.coordination_overhead = overhead;
        self
    }

    /// Sets the simulated-time horizon.
    pub fn horizon(mut self, horizon: SimDuration) -> Self {
        self.scenario.horizon = horizon;
        self
    }

    /// Validates and returns the scenario.
    pub fn build(self) -> Result<Scenario, ConfigError> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

pub(crate) fn strategy_to_text(strategy: Strategy) -> String {
    match strategy {
        Strategy::Delay { max_wait_secs } => format!("delay {max_wait_secs:?}"),
        other => other.label(),
    }
}

pub(crate) fn strategy_from_text(text: &str) -> Result<Strategy, ScenarioParseError> {
    let mut tokens = text.split_whitespace();
    let strategy = match (tokens.next(), tokens.next()) {
        (Some("interfering"), None) => Strategy::Interfere,
        (Some("fcfs"), None) => Strategy::FcfsSerialize,
        (Some("interrupt"), None) => Strategy::Interrupt,
        (Some("calciom-dynamic"), None) => Strategy::Dynamic,
        (Some("delay"), Some(secs)) => Strategy::Delay {
            max_wait_secs: secs.parse().map_err(|_| invalid("strategy", text))?,
        },
        _ => return Err(invalid("strategy", text)),
    };
    if tokens.next().is_some() {
        return Err(invalid("strategy", text));
    }
    Ok(strategy)
}

fn parse_pattern(text: &str) -> Result<AccessPattern, ScenarioParseError> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        ["contiguous", bytes] => Ok(AccessPattern::Contiguous {
            bytes_per_proc: bytes.parse().map_err(|_| invalid("pattern", text))?,
        }),
        ["strided", size, count] => Ok(AccessPattern::Strided {
            block_size: size.parse().map_err(|_| invalid("pattern", text))?,
            block_count: count.parse().map_err(|_| invalid("pattern", text))?,
        }),
        _ => Err(invalid("pattern", text)),
    }
}

fn parse_cache(text: &str) -> Result<Option<CacheConfig>, ScenarioParseError> {
    if text == "none" {
        return Ok(None);
    }
    let tokens: Vec<&str> = text.split_whitespace().collect();
    match tokens.as_slice() {
        [capacity, absorb, drain] => {
            let num = |s: &str| s.parse::<f64>().map_err(|_| invalid("cache", text));
            Ok(Some(CacheConfig {
                capacity_bytes: num(capacity)?,
                absorb_bw: num(absorb)?,
                drain_bw: num(drain)?,
            }))
        }
        _ => Err(invalid("cache", text)),
    }
}

/// Encodes a free-form string (application names) as a double-quoted,
/// backslash-escaped token, so that whitespace survives the parser's value
/// trimming and newlines / `[app]`-like content cannot break the
/// line-based format.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes the encoding produced by [`quote`].
pub(crate) fn unquote(text: &str) -> Result<String, ScenarioParseError> {
    let inner = text
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| invalid("name", text))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return Err(invalid("name", text)),
        }
    }
    Ok(out)
}

/// The error shape shared by the crate's two text codecs (scenario and
/// trace), so the `key = value` helpers below exist exactly once.
pub(crate) trait CodecError: Sized {
    /// A required key was absent from its section.
    fn missing_key(key: &'static str) -> Self;
    /// A value could not be parsed.
    fn invalid_value(key: &str, value: &str) -> Self;
    /// A key that does not belong to its section.
    fn unknown_key(key: String) -> Self;
}

impl CodecError for ScenarioParseError {
    fn missing_key(key: &'static str) -> Self {
        ScenarioParseError::MissingKey(key)
    }
    fn invalid_value(key: &str, value: &str) -> Self {
        ScenarioParseError::InvalidValue {
            key: key.to_string(),
            value: value.to_string(),
        }
    }
    fn unknown_key(key: String) -> Self {
        ScenarioParseError::UnknownKey(key)
    }
}

pub(crate) fn invalid<E: CodecError>(key: &str, value: &str) -> E {
    E::invalid_value(key, value)
}

pub(crate) fn take<E: CodecError>(
    map: &mut BTreeMap<String, String>,
    key: &'static str,
) -> Result<String, E> {
    map.remove(key).ok_or_else(|| E::missing_key(key))
}

pub(crate) fn parse_num<T: std::str::FromStr, E: CodecError>(
    map: &mut BTreeMap<String, String>,
    key: &'static str,
) -> Result<T, E> {
    let value = take::<E>(map, key)?;
    value.parse().map_err(|_| invalid(key, &value))
}

pub(crate) fn reject_leftovers<E: CodecError>(map: BTreeMap<String, String>) -> Result<(), E> {
    match map.into_keys().next() {
        Some(key) => Err(E::unknown_key(key)),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1.0e6;

    fn sample() -> Scenario {
        Scenario::builder(PfsConfig::grid5000_nancy())
            .app(AppConfig::new(
                AppId(0),
                "App A",
                336,
                AccessPattern::strided(2.0 * MB, 8),
            ))
            .app(
                AppConfig::new(AppId(1), "App B", 48, AccessPattern::contiguous(16.0 * MB))
                    .starting_at_secs(2.5)
                    .with_periodic_phases(3, SimDuration::from_secs(10.0)),
            )
            .strategy(Strategy::Delay { max_wait_secs: 4.0 })
            .granularity(Granularity::File)
            .policy(DynamicPolicy {
                metric: EfficiencyMetric::TotalIoTime,
                consider_interference: true,
                interference_gamma: 0.9,
            })
            .coordination_overhead(SimDuration::from_millis(2.0))
            .horizon(SimDuration::from_secs(3600.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            Scenario::builder(PfsConfig::grid5000_rennes())
                .build()
                .unwrap_err(),
            ConfigError::NoApplications
        );
        let dup = Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(
                AppId(0),
                "A",
                8,
                AccessPattern::contiguous(MB),
            ))
            .app(AppConfig::new(
                AppId(0),
                "B",
                8,
                AccessPattern::contiguous(MB),
            ))
            .build();
        assert_eq!(dup.unwrap_err(), ConfigError::DuplicateApp(AppId(0)));
        let bad_pfs = Scenario::builder(PfsConfig {
            num_servers: 0,
            ..PfsConfig::default()
        })
        .app(AppConfig::new(
            AppId(0),
            "A",
            8,
            AccessPattern::contiguous(MB),
        ))
        .build();
        assert!(matches!(bad_pfs.unwrap_err(), ConfigError::Pfs(_)));
    }

    #[test]
    fn text_round_trip_is_exact() {
        let scenario = sample();
        let text = scenario.to_text();
        let back = Scenario::from_text(&text).unwrap();
        assert_eq!(back, scenario);
        // Stability: re-encoding yields the same document.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn infinite_bandwidth_survives_the_round_trip() {
        let mut scenario = sample();
        scenario.pfs.interconnect_bw = f64::INFINITY;
        let back = Scenario::from_text(&scenario.to_text()).unwrap();
        assert_eq!(back.pfs.interconnect_bw, f64::INFINITY);
    }

    #[test]
    fn every_strategy_round_trips() {
        for strategy in [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
            Strategy::Delay {
                max_wait_secs: 0.125,
            },
        ] {
            let mut scenario = sample();
            scenario.strategy = strategy;
            let back = Scenario::from_text(&scenario.to_text()).unwrap();
            assert_eq!(back.strategy, strategy);
        }
    }

    #[test]
    fn hostile_app_names_round_trip_exactly() {
        // Names are free-form: whitespace, quotes, backslashes, newlines
        // and even section-header look-alikes must survive the text
        // encoding byte for byte.
        for name in [
            "App A ",
            " leading",
            "quo\"te",
            "back\\slash",
            "multi\nline",
            "[app]",
            "key = value",
            "",
        ] {
            let mut scenario = sample();
            scenario.apps[0].name = name.to_string();
            let back = Scenario::from_text(&scenario.to_text()).unwrap();
            assert_eq!(back, scenario, "name {name:?} must round-trip");
        }
    }

    #[test]
    fn named_arbitration_round_trips_and_validates() {
        let mut scenario = sample();
        scenario.arbitration = Some(PolicySpec::with_arg("rr", "10s"));
        scenario.validate().unwrap();
        assert_eq!(scenario.policy_label(), "rr(10s)");
        let text = scenario.to_text();
        assert!(text.contains("arbitration = rr(10s)"));
        let back = Scenario::from_text(&text).unwrap();
        assert_eq!(back, scenario);

        // Legacy scenarios emit no arbitration key at all: their encoding
        // is byte-identical to the pre-policy-layer format and the label
        // falls back to the strategy's.
        let legacy = sample();
        assert!(!legacy.to_text().contains("arbitration"));
        assert_eq!(legacy.policy_label(), "delay(4s)");

        // An unknown policy name fails *validation*, not session build.
        let mut bogus = sample();
        bogus.arbitration = Some(PolicySpec::new("warp"));
        assert!(matches!(
            bogus.validate().unwrap_err(),
            ConfigError::Policy(_)
        ));
        // And a malformed spec text fails decoding.
        let broken = text.replace("arbitration = rr(10s)", "arbitration = rr(10s");
        assert!(matches!(
            Scenario::from_text(&broken),
            Err(ScenarioParseError::InvalidValue { .. })
        ));
    }

    #[test]
    fn medium_round_trips_and_legacy_text_is_unchanged() {
        // Default (max-min) scenarios emit no medium key: their encoding
        // is byte-identical to the pre-fair-medium format.
        let legacy = sample();
        assert_eq!(legacy.medium, SharingModel::MaxMin);
        assert!(!legacy.to_text().contains("medium"));

        let mut fair = sample();
        fair.medium = SharingModel::FairFast;
        let text = fair.to_text();
        assert!(text.contains("medium = fair-fast"));
        let back = Scenario::from_text(&text).unwrap();
        assert_eq!(back, fair);
        assert_eq!(back.to_text(), text);

        // An unknown medium label fails decoding.
        let broken = text.replace("medium = fair-fast", "medium = psychic");
        assert!(matches!(
            Scenario::from_text(&broken),
            Err(ScenarioParseError::InvalidValue { .. })
        ));
    }

    #[test]
    fn cluster_round_trips_and_legacy_text_is_unchanged() {
        use crate::cluster::{ClusterSpec, MachineSpec};
        use simcore::time::SimDuration;

        // Flat scenarios emit no cluster key: their encoding is
        // byte-identical to the pre-hierarchy format.
        let legacy = sample();
        assert!(legacy.cluster.is_none());
        assert!(!legacy.to_text().contains("cluster"));

        let mut clustered = sample();
        clustered.cluster = Some(ClusterSpec::new(
            1,
            vec![
                MachineSpec {
                    latency: SimDuration::from_ticks(2_000),
                    apps: vec![AppId(0)],
                },
                MachineSpec {
                    latency: SimDuration::ZERO,
                    apps: vec![AppId(1)],
                },
            ],
        ));
        clustered.validate().unwrap();
        let text = clustered.to_text();
        assert!(text.contains("cluster = slots=1"));
        let back = Scenario::from_text(&text).unwrap();
        assert_eq!(back, clustered);
        assert_eq!(back.to_text(), text);

        // A topology that does not match the application list fails
        // validation with the typed cluster error.
        let mut orphan = clustered.clone();
        // simlint: allow(R4, the cluster was assigned five lines above)
        orphan.cluster.as_mut().unwrap().machines.pop();
        assert!(matches!(
            orphan.validate().unwrap_err(),
            ConfigError::Cluster(crate::error::ClusterConfigError::UnassignedApp(AppId(1)))
        ));
        // And a malformed cluster value fails decoding.
        let broken = text.replace("cluster = slots=1", "cluster = slots=zero");
        assert!(matches!(
            Scenario::from_text(&broken),
            Err(ScenarioParseError::InvalidValue { .. })
        ));
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let text = sample().to_text();
        let duplicated = text.replace(
            "granularity = file",
            "granularity = file\ngranularity = round",
        );
        assert_eq!(
            Scenario::from_text(&duplicated),
            Err(ScenarioParseError::DuplicateKey("granularity".into()))
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert_eq!(
            Scenario::from_text("nonsense"),
            Err(ScenarioParseError::BadHeader)
        );
        let text = sample().to_text();
        let broken = text.replace("strategy = delay 4.0", "strategy = warp 9");
        assert!(matches!(
            Scenario::from_text(&broken),
            Err(ScenarioParseError::InvalidValue { .. })
        ));
        let missing = text.replace("num_servers = 35\n", "");
        assert_eq!(
            Scenario::from_text(&missing),
            Err(ScenarioParseError::MissingKey("num_servers"))
        );
        let unknown = format!("{text}\nbogus_key = 1\n");
        assert!(matches!(
            Scenario::from_text(&unknown),
            Err(ScenarioParseError::UnknownKey(_))
        ));
        let bad_section = format!("{text}\n[warp]\n");
        assert!(matches!(
            Scenario::from_text(&bad_section),
            Err(ScenarioParseError::UnknownSection(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = sample().to_text();
        let with_noise = text.replace("[pfs]", "# the file system\n\n[pfs]");
        assert_eq!(Scenario::from_text(&with_noise).unwrap(), sample());
    }
}
