//! Dynamic strategy selection.
//!
//! When a new application informs the others that it wants to start an I/O
//! phase while someone is already accessing the file system, CALCioM must
//! decide between three options (Section IV-D):
//!
//! * make the newcomer **wait** (FCFS serialization),
//! * **interrupt** the current accessor for the benefit of the newcomer,
//! * let them **interfere**.
//!
//! The decision minimizes the *additional* cost each option adds to the
//! configured machine-wide efficiency metric, computed from the information
//! the applications exchanged (core counts, remaining data, estimated
//! stand-alone times). For the CPU·seconds metric and two applications of
//! equal size this reduces exactly to the paper's rule: interrupt A if and
//! only if `dt < T_A(alone) − T_B(alone)`, i.e. B arrived before A wrote the
//! last `T_B`-worth of its data.

use crate::info::IoInfo;
use crate::metrics::EfficiencyMetric;
use serde::{Deserialize, Serialize};

/// The choice made by the dynamic policy for one arriving application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DynDecision {
    /// Let the newcomer proceed concurrently with the current accessor(s).
    Interfere,
    /// Make the newcomer wait until the current accessor(s) release.
    WaitFcfs,
    /// Interrupt the current accessor(s) and let the newcomer go first.
    InterruptAccessors,
}

/// Configuration of the dynamic policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicPolicy {
    /// The machine-wide metric to minimize.
    pub metric: EfficiencyMetric,
    /// Whether plain interference is considered as a candidate (requires an
    /// interference estimate; the paper leaves this estimation to future
    /// work and only chooses between FCFS and interruption, so the default
    /// is `false`).
    pub consider_interference: bool,
    /// Locality-breakage factor used by the interference estimate when
    /// `consider_interference` is enabled.
    pub interference_gamma: f64,
}

impl Default for DynamicPolicy {
    fn default() -> Self {
        DynamicPolicy {
            metric: EfficiencyMetric::CpuSecondsWasted,
            consider_interference: false,
            interference_gamma: 0.85,
        }
    }
}

impl DynamicPolicy {
    /// Creates a policy minimizing the given metric, without considering
    /// plain interference (the paper's configuration).
    pub fn new(metric: EfficiencyMetric) -> Self {
        DynamicPolicy {
            metric,
            ..Default::default()
        }
    }

    /// Per-application weight of one extra second of I/O time under the
    /// configured metric.
    fn weight(&self, info: &IoInfo) -> f64 {
        match self.metric {
            EfficiencyMetric::TotalIoTime => 1.0,
            EfficiencyMetric::CpuSecondsWasted => info.procs as f64,
            EfficiencyMetric::SumInterferenceFactors => 1.0 / info.est_alone_total_secs.max(1e-9),
        }
    }

    /// Additional metric cost if the newcomer waits for all accessors
    /// (FCFS): only the newcomer is delayed, by the accessors' remaining
    /// stand-alone time.
    pub fn extra_cost_fcfs(&self, requester: &IoInfo, accessors: &[IoInfo]) -> f64 {
        let remaining: f64 = accessors.iter().map(|a| a.est_alone_remaining_secs).sum();
        self.weight(requester) * remaining
    }

    /// Additional metric cost if the accessors are interrupted: each
    /// accessor is delayed by the newcomer's full stand-alone phase time.
    pub fn extra_cost_interrupt(&self, requester: &IoInfo, accessors: &[IoInfo]) -> f64 {
        accessors
            .iter()
            .map(|a| self.weight(a) * requester.est_alone_total_secs)
            .sum()
    }

    /// Additional metric cost if the newcomer simply interferes with the
    /// (first) accessor, using a proportional-sharing fluid estimate with a
    /// locality-breakage factor γ. This is the estimate the paper leaves to
    /// future work; it is used only when `consider_interference` is set.
    pub fn extra_cost_interfere(&self, requester: &IoInfo, accessors: &[IoInfo]) -> f64 {
        if accessors.is_empty() {
            return 0.0;
        }
        // If the combined client-side demand does not saturate the file
        // system, overlapping the accesses costs (almost) nothing — the
        // Fig. 7(b)/Fig. 12 regime where interference is lower than a
        // proportional-sharing model would predict.
        let combined_demand: f64 =
            requester.pfs_share + accessors.iter().map(|a| a.pfs_share).sum::<f64>();
        if combined_demand <= 1.0 {
            return 0.0;
        }
        // Pairwise estimate against the aggregate of the accessors.
        let t_r = requester.est_alone_total_secs;
        let t_a: f64 = accessors.iter().map(|a| a.est_alone_remaining_secs).sum();
        let w_r = requester.procs.max(1) as f64;
        let w_a: f64 = accessors.iter().map(|a| a.procs.max(1) as f64).sum();
        let gamma = self.interference_gamma.clamp(1e-3, 1.0);

        // Shares of the (server-limited) bandwidth while both are active,
        // expressed as fractions of the alone bandwidth.
        let share_r = gamma * w_r / (w_r + w_a);
        let share_a = gamma * w_a / (w_r + w_a);

        // Who finishes first under proportional sharing?
        let finish_r = t_r / share_r;
        let finish_a = t_a / share_a;
        let (obs_r, obs_a) = if finish_r <= finish_a {
            // Requester finishes first; the accessor then completes the rest
            // at full speed.
            let done_a = finish_r * share_a;
            (finish_r, finish_r + (t_a - done_a).max(0.0))
        } else {
            let done_r = finish_a * share_r;
            (finish_a + (t_r - done_r).max(0.0), finish_a)
        };

        let acc_weight: f64 =
            accessors.iter().map(|a| self.weight(a)).sum::<f64>() / accessors.len() as f64;
        self.weight(requester) * (obs_r - t_r).max(0.0) + acc_weight * (obs_a - t_a).max(0.0)
    }

    /// Decides what to do with a newcomer given the current accessors'
    /// exchanged information. With no accessor the newcomer is always
    /// allowed to proceed.
    pub fn decide(&self, requester: &IoInfo, accessors: &[IoInfo]) -> DynDecision {
        if accessors.is_empty() {
            return DynDecision::Interfere;
        }
        let fcfs = self.extra_cost_fcfs(requester, accessors);
        let interrupt = self.extra_cost_interrupt(requester, accessors);
        let mut best = if interrupt < fcfs {
            (DynDecision::InterruptAccessors, interrupt)
        } else {
            (DynDecision::WaitFcfs, fcfs)
        };
        if self.consider_interference {
            let interfere = self.extra_cost_interfere(requester, accessors);
            if interfere < best.1 {
                best = (DynDecision::Interfere, interfere);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpiio::Granularity;
    use pfs::AppId;

    fn info(app: usize, procs: u32, total: f64, remaining: f64) -> IoInfo {
        info_with_share(app, procs, total, remaining, 1.0)
    }

    fn info_with_share(
        app: usize,
        procs: u32,
        total: f64,
        remaining: f64,
        pfs_share: f64,
    ) -> IoInfo {
        IoInfo {
            app: AppId(app),
            procs,
            files_total: 1,
            rounds_total: 1,
            bytes_total: total * 1.0e9,
            bytes_remaining: remaining * 1.0e9,
            est_alone_total_secs: total,
            est_alone_remaining_secs: remaining,
            pfs_share,
            granularity: Granularity::Round,
        }
    }

    #[test]
    fn no_accessor_means_proceed() {
        let policy = DynamicPolicy::default();
        assert_eq!(
            policy.decide(&info(1, 64, 5.0, 5.0), &[]),
            DynDecision::Interfere
        );
    }

    #[test]
    fn paper_rule_equal_sizes() {
        // Fig. 11 scenario: N_A = N_B = 2048, B writes 4× less than A.
        // Interrupt A iff dt < T_A(alone) − T_B(alone).
        let policy = DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted);
        let t_a_alone = 28.0;
        let t_b_alone = 7.0;
        // Early arrival: A has written little, remaining 25 s > T_B → interrupt.
        let b = info(1, 2048, t_b_alone, t_b_alone);
        let a_early = info(0, 2048, t_a_alone, 25.0);
        assert_eq!(
            policy.decide(&b, &[a_early]),
            DynDecision::InterruptAccessors
        );
        // Late arrival (dt > T_A − T_B = 21 s): remaining < 7 s → FCFS.
        let a_late = info(0, 2048, t_a_alone, 5.0);
        assert_eq!(policy.decide(&b, &[a_late]), DynDecision::WaitFcfs);
        // Boundary: remaining exactly T_B → FCFS (ties keep the accessor).
        let a_tie = info(0, 2048, t_a_alone, t_b_alone);
        assert_eq!(policy.decide(&b, &[a_tie]), DynDecision::WaitFcfs);
    }

    #[test]
    fn cpu_seconds_metric_protects_big_applications() {
        // A small app should not interrupt a much bigger one under the
        // CPU·seconds metric unless the big one is nearly done.
        let policy = DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted);
        let small = info(1, 24, 2.0, 2.0);
        let big_mid_write = info(0, 744, 12.0, 8.0);
        // interrupt cost = 744 × 2 = 1488; fcfs cost = 24 × 8 = 192 → wait.
        assert_eq!(
            policy.decide(&small, std::slice::from_ref(&big_mid_write)),
            DynDecision::WaitFcfs
        );

        // Under the plain sum-of-times metric the same situation interrupts
        // the big application (2 s < 8 s).
        let policy = DynamicPolicy::new(EfficiencyMetric::TotalIoTime);
        assert_eq!(
            policy.decide(&small, &[big_mid_write]),
            DynDecision::InterruptAccessors
        );
    }

    #[test]
    fn interference_factor_metric_protects_small_applications() {
        // Under Σ I_X, delaying a tiny app by a big app's remaining time is
        // very costly (its factor explodes), so the big app is interrupted.
        let policy = DynamicPolicy::new(EfficiencyMetric::SumInterferenceFactors);
        let small = info(1, 24, 2.0, 2.0);
        let big = info(0, 744, 12.0, 10.0);
        assert_eq!(
            policy.decide(&small, &[big]),
            DynDecision::InterruptAccessors
        );
    }

    #[test]
    fn extra_costs_match_hand_computation() {
        let policy = DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted);
        let b = info(1, 100, 3.0, 3.0);
        let a = info(0, 200, 10.0, 6.0);
        assert_eq!(
            policy.extra_cost_fcfs(&b, std::slice::from_ref(&a)),
            100.0 * 6.0
        );
        assert_eq!(policy.extra_cost_interrupt(&b, &[a]), 200.0 * 3.0);
    }

    #[test]
    fn interference_estimate_is_positive_and_bounded() {
        let policy = DynamicPolicy {
            consider_interference: true,
            interference_gamma: 0.85,
            metric: EfficiencyMetric::TotalIoTime,
        };
        let b = info_with_share(1, 512, 5.0, 5.0, 1.0);
        let a = info_with_share(0, 512, 5.0, 5.0, 1.0);
        let cost = policy.extra_cost_interfere(&b, &[a]);
        // Equal apps sharing with γ<1: both are delayed, cost is positive
        // but finite.
        assert!(cost > 0.0 && cost < 30.0, "cost = {cost}");
        assert_eq!(policy.extra_cost_interfere(&b, &[]), 0.0);
    }

    #[test]
    fn consider_interference_picks_interference_when_demand_fits() {
        // Two small applications whose combined client-side demand does not
        // saturate the file system (Fig. 7b / Fig. 12): overlapping is free,
        // so neither serialization nor interruption is worth it.
        let policy = DynamicPolicy {
            consider_interference: true,
            interference_gamma: 1.0,
            metric: EfficiencyMetric::TotalIoTime,
        };
        let b = info_with_share(1, 1024, 8.0, 8.0, 0.45);
        let a = info_with_share(0, 1024, 8.0, 8.0, 0.45);
        assert_eq!(policy.decide(&b, &[a]), DynDecision::Interfere);
    }

    #[test]
    fn consider_interference_still_serializes_saturating_applications() {
        // Same configuration but both applications can saturate the file
        // system on their own: overlapping them is costly, so the policy
        // falls back to one of the serializing options.
        let policy = DynamicPolicy {
            consider_interference: true,
            interference_gamma: 0.85,
            metric: EfficiencyMetric::TotalIoTime,
        };
        let b = info_with_share(1, 2048, 8.0, 8.0, 1.0);
        let a = info_with_share(0, 2048, 8.0, 6.0, 1.0);
        assert_ne!(policy.decide(&b, &[a]), DynDecision::Interfere);
    }
}
