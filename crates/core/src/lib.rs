//! # calciom — Cross-Application Layer for Coordinated I/O Management
//!
//! A reproduction of the framework described in *"CALCioM: Mitigating I/O
//! Interference in HPC Systems through Cross-Application Coordination"*
//! (Dorier, Antoniu, Ross, Kimpe, Ibrahim — IPDPS 2014).
//!
//! Concurrent HPC applications that write to a shared parallel file system
//! interfere with each other: storage servers interleave their request
//! streams, breaking each application's individually optimized access
//! pattern and hurting machine-wide efficiency. CALCioM lets the running
//! applications *talk to each other*: each one shares a small amount of
//! information about its ongoing and upcoming I/O ([`IoInfo`], the paper's
//! `MPI_Info` payload) and, based on that shared knowledge and a
//! machine-wide efficiency metric ([`EfficiencyMetric`]), the framework
//! picks one of four strategies ([`Strategy`]):
//!
//! * **Interfere** — let the accesses proceed concurrently,
//! * **FCFS serialize** — the later application waits,
//! * **Interrupt** — the earlier application yields at its next
//!   coordination point and resumes afterwards,
//! * **Dynamic** — pick whichever of the above minimizes the metric, using
//!   the exchanged information ([`DynamicPolicy`]).
//!
//! The arbitration layer is *open*: all five strategies are built-in
//! implementations of the [`ArbitrationPolicy`] trait, the
//! [`Arbiter`] is a pure mechanism engine delegating every decision to
//! the installed policy, and the [`PolicyRegistry`] resolves policies by
//! name (`fcfs`, `delay(30s)`, `priority(w=cores)`, `rr(10s)`, …) so
//! scenarios and sweeps can compare schedules the enum cannot express —
//! see the [`arbitration`] module.
//!
//! The crate couples three layers (all part of this reproduction):
//! the [`pfs`] parallel-file-system simulator, the [`mpiio`] MPI-IO model
//! (access patterns, collective buffering, ADIO hook points), and this
//! coordination layer. The [`Session`] type runs a complete scenario and
//! produces per-application, per-phase timings.
//!
//! Execution is *observable*: [`Session::execute_with`] streams every
//! [`SimEvent`] (grants, interruptions, transfer progress, …) to a
//! [`SimObserver`] — record a replayable [`Trace`] with [`TraceRecorder`],
//! derive Gantt/bandwidth views with [`TimelineAggregator`], or fold your
//! own. The [`SessionReport`] is itself derived from that stream, so a
//! recorded trace replays to the same report bit for bit.
//!
//! ## Quick start
//!
//! ```
//! use calciom::{Scenario, Strategy};
//! use mpiio::{AccessPattern, AppConfig};
//! use pfs::{AppId, PfsConfig};
//!
//! // Two 336-process applications, each writing 16 MB per process;
//! // B starts 2 seconds after A.
//! let a = AppConfig::new(AppId(0), "App A", 336, AccessPattern::contiguous(16.0e6));
//! let b = AppConfig::new(AppId(1), "App B", 336, AccessPattern::contiguous(16.0e6))
//!     .starting_at_secs(2.0);
//!
//! // Without coordination they interfere...
//! let interfering = Scenario::builder(PfsConfig::grid5000_rennes())
//!     .apps([a.clone(), b.clone()])
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // ...with CALCioM the second one is serialized after the first.
//! let coordinated = Scenario::builder(PfsConfig::grid5000_rennes())
//!     .apps([a, b])
//!     .strategy(Strategy::FcfsSerialize)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! let t_first = |r: &calciom::SessionReport| r.apps[0].first_phase().io_time();
//! // The first application is protected by serialization.
//! assert!(t_first(&coordinated) < t_first(&interfering));
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod arbiter;
pub mod arbitration;
pub mod cluster;
pub mod error;
pub mod info;
pub mod metrics;
pub mod observe;
pub mod policy;
pub mod scenario;
pub mod session;
pub mod strategy;
pub mod timeline;
pub mod trace;

pub use api::{CoordinationTransport, Coordinator, LocalTransport, SharedTransport};
pub use arbiter::Arbiter;
pub use arbitration::{
    ArbiterView, ArbitrationPolicy, GrantTrigger, ParkReason, PolicyError, PolicyRegistry,
    PolicySpec, RequestDecision, TimeoutDecision, YieldDecision,
};
pub use cluster::{ClusterSpec, ClusterStats, ClusterTransport, MachineLoad, MachineSpec};
pub use error::{
    AppRunState, ClusterConfigError, ConfigError, DeadlockApp, Error, InfoError,
    ScenarioParseError, SessionError, TraceParseError,
};
pub use info::IoInfo;
pub use metrics::{
    cpu_seconds_wasted_per_core, evaluate, interference_factor, AppObservation, EfficiencyMetric,
};
pub use observe::{AppSeed, GrantKind, NullObserver, ReportBuilder, SimEvent, SimObserver};
pub use policy::{DynDecision, DynamicPolicy};
pub use scenario::{Scenario, ScenarioBuilder};
pub use session::{AppReport, PhaseResult, Session, SessionReport};
pub use strategy::{AccessOutcome, Strategy, YieldOutcome};
pub use timeline::{Activity, BandwidthPoint, GanttInterval, Timeline, TimelineAggregator};
pub use trace::{Trace, TraceRecorder};

// Re-export the identifiers users need from the substrate crates so that
// simple programs only have to depend on `calciom`.
pub use mpiio::{AccessPattern, AppConfig, CollectiveConfig, Granularity};
pub use pfs::{AppId, CacheConfig, PfsConfig, SharePolicy};
pub use simcore::fair::SharingModel;
