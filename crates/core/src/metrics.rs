//! Machine-wide efficiency metrics and interference factors.
//!
//! The paper argues that per-request "fairness" is the wrong target and that
//! the scheduling strategy should instead be chosen to optimize a *machine
//! wide* efficiency metric. Section IV-D uses the total number of CPU hours
//! wasted in I/O, `f = Σ_X N_X · T_X`; Section III also mentions the sum of
//! interference factors `f = Σ_X I_X`. This module implements those metrics
//! plus the plain sum of I/O times, and the per-application interference
//! factor `I = T / T_alone` of Section II-C.

use pfs::AppId;
use serde::{Deserialize, Serialize};

/// A machine-wide efficiency metric to minimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EfficiencyMetric {
    /// Σ_X T_X — the sum of observed I/O times over applications.
    TotalIoTime,
    /// Σ_X N_X · T_X — CPU·seconds wasted in I/O (the paper's Fig. 11
    /// metric): I/O time weighted by the number of cores the application
    /// occupies while it waits.
    CpuSecondsWasted,
    /// Σ_X I_X = Σ_X T_X / T_X(alone) — the sum of interference factors.
    SumInterferenceFactors,
}

impl EfficiencyMetric {
    /// All metrics, in the order they appear in the paper.
    pub const ALL: [EfficiencyMetric; 3] = [
        EfficiencyMetric::TotalIoTime,
        EfficiencyMetric::CpuSecondsWasted,
        EfficiencyMetric::SumInterferenceFactors,
    ];

    /// Short label for experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            EfficiencyMetric::TotalIoTime => "sum_io_time",
            EfficiencyMetric::CpuSecondsWasted => "cpu_seconds_wasted",
            EfficiencyMetric::SumInterferenceFactors => "sum_interference_factors",
        }
    }

    /// Parses a label produced by [`EfficiencyMetric::label`].
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|m| m.label() == label)
    }
}

/// Per-application observation used to evaluate a metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppObservation {
    /// Which application.
    pub app: AppId,
    /// Number of cores the application runs on.
    pub procs: u32,
    /// Observed I/O time in seconds (including any time spent waiting for
    /// access).
    pub io_seconds: f64,
    /// I/O time the application would have needed alone, in seconds.
    pub alone_seconds: f64,
}

impl AppObservation {
    /// Interference factor `I = T / T_alone` (Section II-C). Returns 1 for
    /// a degenerate zero-length baseline.
    pub fn interference_factor(&self) -> f64 {
        interference_factor(self.io_seconds, self.alone_seconds)
    }
}

/// Interference factor `I = T / T_alone`, clamped below at 1 for numerical
/// noise (an application cannot be faster than alone in this model) and
/// returning 1 when the baseline is degenerate.
pub fn interference_factor(observed_seconds: f64, alone_seconds: f64) -> f64 {
    if alone_seconds <= 0.0 {
        return 1.0;
    }
    (observed_seconds / alone_seconds).max(1.0)
}

/// Evaluates a machine-wide metric over a set of application observations.
pub fn evaluate(metric: EfficiencyMetric, observations: &[AppObservation]) -> f64 {
    observations
        .iter()
        .map(|o| match metric {
            EfficiencyMetric::TotalIoTime => o.io_seconds,
            EfficiencyMetric::CpuSecondsWasted => o.procs as f64 * o.io_seconds,
            EfficiencyMetric::SumInterferenceFactors => o.interference_factor(),
        })
        .sum()
}

/// CPU·seconds wasted in I/O *per core*, the quantity plotted on the y axis
/// of Fig. 11: `Σ_X N_X · T_X / Σ_X N_X`.
pub fn cpu_seconds_wasted_per_core(observations: &[AppObservation]) -> f64 {
    let total_cores: f64 = observations.iter().map(|o| o.procs as f64).sum();
    if total_cores <= 0.0 {
        return 0.0;
    }
    evaluate(EfficiencyMetric::CpuSecondsWasted, observations) / total_cores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(procs: u32, io: f64, alone: f64) -> AppObservation {
        AppObservation {
            app: AppId(0),
            procs,
            io_seconds: io,
            alone_seconds: alone,
        }
    }

    #[test]
    fn interference_factor_basics() {
        assert_eq!(interference_factor(20.0, 10.0), 2.0);
        assert_eq!(interference_factor(5.0, 10.0), 1.0, "clamped at 1");
        assert_eq!(interference_factor(5.0, 0.0), 1.0, "degenerate baseline");
        assert_eq!(obs(8, 30.0, 10.0).interference_factor(), 3.0);
    }

    #[test]
    fn total_io_time_sums_times() {
        let observations = [obs(100, 10.0, 10.0), obs(200, 20.0, 15.0)];
        assert_eq!(evaluate(EfficiencyMetric::TotalIoTime, &observations), 30.0);
    }

    #[test]
    fn cpu_seconds_weights_by_cores() {
        let observations = [obs(2048, 10.0, 10.0), obs(2048, 30.0, 20.0)];
        assert_eq!(
            evaluate(EfficiencyMetric::CpuSecondsWasted, &observations),
            2048.0 * 40.0
        );
        assert_eq!(cpu_seconds_wasted_per_core(&observations), 20.0);
    }

    #[test]
    fn sum_interference_factors() {
        let observations = [obs(24, 28.0, 2.0), obs(744, 12.0, 10.0)];
        let f = evaluate(EfficiencyMetric::SumInterferenceFactors, &observations);
        assert!((f - (14.0 + 1.2)).abs() < 1e-12);
    }

    #[test]
    fn per_core_metric_is_zero_without_observations() {
        assert_eq!(cpu_seconds_wasted_per_core(&[]), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<&str> = EfficiencyMetric::ALL.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(
            labels
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            3
        );
    }
}
