//! Scheduling strategies.
//!
//! Section III-A of the paper describes four ways of dealing with an
//! arriving I/O phase while another application is accessing the file
//! system: let them interfere, serialize on a first-come-first-served
//! basis, interrupt the application currently accessing, or pick among
//! these dynamically against a machine-wide efficiency metric. Fig. 12
//! additionally shows that *delaying* one of the accesses by a bounded
//! amount can beat both FCFS and plain interference when the observed
//! interference is low.

use serde::{Deserialize, Serialize};

/// The I/O scheduling strategy applied by CALCioM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// No coordination: applications access the file system concurrently
    /// (the baseline the paper calls "interfering").
    Interfere,
    /// First-come-first-served serialization: an application arriving while
    /// another is accessing waits until that access completes.
    FcfsSerialize,
    /// Interruption-based serialization: the application currently
    /// accessing yields at its next coordination point for the benefit of
    /// the newcomer, and resumes once the newcomer has finished.
    Interrupt,
    /// Bounded delay: the newcomer waits for the current access to finish,
    /// but at most for the given number of seconds, after which it proceeds
    /// and overlaps (Fig. 12's trade-off).
    Delay {
        /// Maximum number of seconds the newcomer is willing to wait.
        max_wait_secs: f64,
    },
    /// Dynamic selection among the strategies above, driven by the
    /// configured machine-wide efficiency metric and the information the
    /// applications exchanged (the CALCioM contribution, Fig. 11).
    Dynamic,
}

impl Strategy {
    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Interfere => "interfering",
            Strategy::FcfsSerialize => "fcfs",
            Strategy::Interrupt => "interrupt",
            Strategy::Delay { .. } => "delay",
            Strategy::Dynamic => "calciom-dynamic",
        }
    }

    /// Whether this strategy requires cross-application coordination (i.e.
    /// is only available through CALCioM).
    pub fn needs_coordination(&self) -> bool {
        !matches!(self, Strategy::Interfere)
    }
}

/// What the arbiter tells an application that asked for access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The application may proceed with its I/O immediately.
    Granted,
    /// The application must wait; it will be granted access later (when the
    /// current accessor releases or yields).
    MustWait,
    /// The application must wait, but no longer than the given number of
    /// seconds (Delay strategy).
    MustWaitAtMost(f64),
}

/// What the arbiter tells the current accessor at one of its yield points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum YieldOutcome {
    /// Keep going: nobody needs the file system more urgently.
    Continue,
    /// Pause here: another application has been granted priority; the
    /// accessor will be resumed when it is granted access again.
    YieldNow,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let strategies = [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Delay { max_wait_secs: 3.0 },
            Strategy::Dynamic,
        ];
        let labels: std::collections::BTreeSet<&str> =
            strategies.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), strategies.len());
    }

    #[test]
    fn coordination_requirement() {
        assert!(!Strategy::Interfere.needs_coordination());
        assert!(Strategy::FcfsSerialize.needs_coordination());
        assert!(Strategy::Interrupt.needs_coordination());
        assert!(Strategy::Dynamic.needs_coordination());
        assert!(Strategy::Delay { max_wait_secs: 1.0 }.needs_coordination());
    }
}
