//! Scheduling strategies.
//!
//! Section III-A of the paper describes four ways of dealing with an
//! arriving I/O phase while another application is accessing the file
//! system: let them interfere, serialize on a first-come-first-served
//! basis, interrupt the application currently accessing, or pick among
//! these dynamically against a machine-wide efficiency metric. Fig. 12
//! additionally shows that *delaying* one of the accesses by a bounded
//! amount can beat both FCFS and plain interference when the observed
//! interference is low.

use crate::arbitration::PolicySpec;
use serde::{Deserialize, Serialize};

/// The I/O scheduling strategy applied by CALCioM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// No coordination: applications access the file system concurrently
    /// (the baseline the paper calls "interfering").
    Interfere,
    /// First-come-first-served serialization: an application arriving while
    /// another is accessing waits until that access completes.
    FcfsSerialize,
    /// Interruption-based serialization: the application currently
    /// accessing yields at its next coordination point for the benefit of
    /// the newcomer, and resumes once the newcomer has finished.
    Interrupt,
    /// Bounded delay: the newcomer waits for the current access to finish,
    /// but at most for the given number of seconds, after which it proceeds
    /// and overlaps (Fig. 12's trade-off).
    Delay {
        /// Maximum number of seconds the newcomer is willing to wait.
        max_wait_secs: f64,
    },
    /// Dynamic selection among the strategies above, driven by the
    /// configured machine-wide efficiency metric and the information the
    /// applications exchanged (the CALCioM contribution, Fig. 11).
    Dynamic,
}

impl Strategy {
    /// Label used in experiment output, carrying the strategy's
    /// parameters: `delay(30s)` and `delay(2s)` are different schedules
    /// and label differently (they used to collapse to a bare `delay`).
    /// This is the same string the policy layer uses
    /// ([`ArbitrationPolicy::label`](crate::arbitration::ArbitrationPolicy::label)
    /// of the corresponding built-in policy).
    pub fn label(&self) -> String {
        self.spec().to_text()
    }

    /// The [`PolicySpec`] naming this strategy's built-in policy in the
    /// standard [`PolicyRegistry`](crate::arbitration::PolicyRegistry).
    pub fn spec(&self) -> PolicySpec {
        match *self {
            Strategy::Interfere => PolicySpec::new("interfering"),
            Strategy::FcfsSerialize => PolicySpec::new("fcfs"),
            Strategy::Interrupt => PolicySpec::new("interrupt"),
            Strategy::Delay { max_wait_secs } => {
                PolicySpec::with_arg("delay", crate::arbitration::secs_to_arg(max_wait_secs))
            }
            Strategy::Dynamic => PolicySpec::new("calciom-dynamic"),
        }
    }

    /// Whether this strategy requires cross-application coordination (i.e.
    /// is only available through CALCioM).
    pub fn needs_coordination(&self) -> bool {
        !matches!(self, Strategy::Interfere)
    }
}

/// What the arbiter tells an application that asked for access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The application may proceed with its I/O immediately.
    Granted,
    /// The application must wait; it will be granted access later (when the
    /// current accessor releases or yields).
    MustWait,
    /// The application must wait, but no longer than the given number of
    /// seconds (Delay strategy).
    MustWaitAtMost(f64),
}

/// What the arbiter tells the current accessor at one of its yield points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum YieldOutcome {
    /// Keep going: nobody needs the file system more urgently.
    Continue,
    /// Pause here: another application has been granted priority; the
    /// accessor will be resumed when it is granted access again.
    YieldNow,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let strategies = [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Delay { max_wait_secs: 3.0 },
            Strategy::Dynamic,
        ];
        let labels: std::collections::BTreeSet<String> =
            strategies.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), strategies.len());
    }

    #[test]
    fn labels_carry_the_delay_bound() {
        // The historic `label()` collapsed every bound to a bare "delay";
        // two differently-bounded schedules must label differently.
        assert_eq!(Strategy::Delay { max_wait_secs: 3.0 }.label(), "delay(3s)");
        assert_eq!(
            Strategy::Delay {
                max_wait_secs: 0.125
            }
            .label(),
            "delay(0.125s)"
        );
        assert_ne!(
            Strategy::Delay { max_wait_secs: 3.0 }.label(),
            Strategy::Delay { max_wait_secs: 4.0 }.label()
        );
        // Parameterless labels stay exactly what figures always printed.
        assert_eq!(Strategy::Interfere.label(), "interfering");
        assert_eq!(Strategy::Dynamic.label(), "calciom-dynamic");
    }

    #[test]
    fn coordination_requirement() {
        assert!(!Strategy::Interfere.needs_coordination());
        assert!(Strategy::FcfsSerialize.needs_coordination());
        assert!(Strategy::Interrupt.needs_coordination());
        assert!(Strategy::Dynamic.needs_coordination());
        assert!(Strategy::Delay { max_wait_secs: 1.0 }.needs_coordination());
    }
}
