//! Umbrella crate for the CALCioM reproduction workspace.
//!
//! This crate only re-exports the member crates so that the top-level
//! `examples/` and `tests/` directories can exercise the whole stack with a
//! single dependency. See `DESIGN.md` for the crate inventory and
//! `EXPERIMENTS.md` for the reproduced figures.

pub use calciom;
pub use iobench;
pub use mpiio;
pub use pfs;
pub use serve;
pub use simcore;
pub use workloads;
