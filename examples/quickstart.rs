//! Quickstart: two applications share a parallel file system, with and
//! without CALCioM coordination — and the coordinated run is *observed*:
//! a `TraceRecorder` captures the full event stream, the trace round-trips
//! through its text codec, and replaying it re-derives the report.
//!
//! Run with `cargo run --release --example quickstart`.

use calciom::{
    AccessPattern, AppConfig, AppId, EfficiencyMetric, Error, Granularity, PfsConfig, Scenario,
    Session, Strategy, Trace, TraceRecorder,
};
use std::collections::BTreeMap;

fn main() -> Result<(), Error> {
    // A Grid'5000-like deployment: 12 storage servers, no write cache.
    let pfs = PfsConfig::grid5000_rennes();

    // Two applications, each with 336 processes writing 16 MB per process.
    // Application B enters its I/O phase 3 seconds after application A.
    let app_a = AppConfig::new(AppId(0), "App A", 336, AccessPattern::contiguous(16.0e6));
    let app_b = AppConfig::new(AppId(1), "App B", 336, AccessPattern::contiguous(16.0e6))
        .starting_at_secs(3.0);

    // Stand-alone baselines (the T_alone of the interference factor).
    let alone: BTreeMap<AppId, f64> = BTreeMap::from([
        (AppId(0), Session::run_alone(app_a.clone(), pfs.clone())?),
        (AppId(1), Session::run_alone(app_b.clone(), pfs.clone())?),
    ]);
    println!(
        "stand-alone write times: A = {:.2}s, B = {:.2}s",
        alone[&AppId(0)],
        alone[&AppId(1)]
    );

    for strategy in [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Interrupt,
        Strategy::Dynamic,
    ] {
        // One serializable description per experiment: the builder is the
        // same entry point the figure harnesses and the sweeps use.
        let scenario = Scenario::builder(pfs.clone())
            .apps([app_a.clone(), app_b.clone()])
            .strategy(strategy)
            .granularity(Granularity::Round)
            .build()?;
        let report = scenario.run()?;
        let t = |id: usize| report.app(AppId(id)).unwrap().first_phase().io_time();
        println!(
            "{:<16} A: {:>6.2}s (I = {:.2})   B: {:>6.2}s (I = {:.2})   CPU·s wasted: {:>9.0}",
            strategy.label(),
            t(0),
            calciom::interference_factor(t(0), alone[&AppId(0)]),
            t(1),
            calciom::interference_factor(t(1), alone[&AppId(1)]),
            report.metric(EfficiencyMetric::CpuSecondsWasted, &alone),
        );
    }

    // Scenarios serialize: the exact same run can be reproduced from text.
    let scenario = Scenario::builder(pfs)
        .apps([app_a, app_b])
        .strategy(Strategy::FcfsSerialize)
        .build()?;
    let decoded = Scenario::from_text(&scenario.to_text())?;
    assert_eq!(decoded.run()?, scenario.run()?);
    println!("round-tripped scenario reproduces its report bit for bit");

    // Sessions stream: record the coordinated run's full event stream…
    let mut recorder = TraceRecorder::for_scenario(&scenario);
    let report = Session::new(&scenario)?.execute_with(&mut recorder)?;
    let trace = recorder.into_trace();
    println!(
        "recorded {} events; B waited {:.2}s for its grant",
        trace.len(),
        report.app(AppId(1)).unwrap().first_phase().wait_seconds
    );
    // …round-trip it through the text codec, and replay it: the report is
    // a fold of the very same stream, so the replay matches bit for bit.
    let replayed = Trace::from_text(&trace.to_text())?.replay_report();
    assert_eq!(replayed, report);
    println!("decoded trace replays the report bit for bit");
    Ok(())
}
