//! Machine-level mixes: 64 applications share one parallel file system,
//! uncoordinated vs coordinated, with `T_alone` baselines served by the
//! shared cache of the sharded sweep runner.
//!
//! Run with `cargo run --release --example machine_mix`.

use calciom::{EfficiencyMetric, Error, SessionReport, Strategy};
use iobench::{run_scenarios_sharded, BaselineCache};
use workloads::{ConcurrencyDistribution, MachineMix};

fn main() -> Result<(), Error> {
    // A seeded 64-application mix: sizes from the Fig. 1(a) marginal,
    // randomized write volumes, periodic phases, start jitter. Same seed,
    // same mix — the experiment is reproducible.
    let mix = MachineMix {
        apps: 64,
        seed: 7,
        ..MachineMix::default()
    };

    // Section II premise, quantified for this very mix: how many
    // applications are in flight at once if nobody coordinates?
    let concurrency = ConcurrencyDistribution::from_trace(&mix.as_job_trace());
    println!(
        "mean concurrent applications (uncoordinated): {:.1}",
        concurrency.mean()
    );

    // The same mix under three strategies, one worker thread per
    // strategy, baselines shared through one cache.
    let strategies = [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Dynamic,
    ];
    let scenarios: Vec<_> = strategies.iter().map(|s| mix.scenario(*s)).collect();
    let cache = BaselineCache::new();
    let runs = run_scenarios_sharded(&scenarios, strategies.len(), &cache)?;

    let waste = |report: &SessionReport, alone: &std::collections::BTreeMap<_, _>| {
        report.metric(EfficiencyMetric::CpuSecondsWasted, alone) / 1e6
    };
    for (strategy, run) in strategies.iter().zip(&runs) {
        println!(
            "{:<16} makespan {:7.1}s   CPU·s wasted {:6.2} M   (simulated in {:?})",
            strategy.label(),
            run.report.makespan.as_secs(),
            waste(&run.report, &run.alone),
            run.wall,
        );
    }
    println!(
        "baseline cache: {} distinct applications, {} hits / {} misses across shards",
        cache.len(),
        cache.hits(),
        cache.misses()
    );

    // The machine-wide story at N = 64: coordination beats interference.
    let interfering = waste(&runs[0].report, &runs[0].alone);
    let fcfs = waste(&runs[1].report, &runs[1].alone);
    assert!(
        fcfs <= interfering,
        "serialization should not waste more CPU than interference"
    );
    Ok(())
}
