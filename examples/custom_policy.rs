//! Plugs a hand-written [`ArbitrationPolicy`] into the arbitration layer
//! and compares it against registry policies on one contended scenario.
//!
//! The policy — "small jobs overlap, big jobs serialize" — is the kind of
//! site-specific rule the paper's closed strategy set could not express:
//! an arriving application with few processes is admitted concurrently
//! (its request streams barely disturb the servers), while large
//! applications queue FCFS behind whoever holds the file system.
//!
//! Run with `cargo run --release --example custom_policy`.

use calciom::arbitration::{ArbiterView, ArbitrationPolicy, PolicySpec, RequestDecision};
use calciom::{
    AccessPattern, AppConfig, AppId, Arbiter, CoordinationTransport, Coordinator, LocalTransport,
    PfsConfig, Scenario,
};

/// Applications at or below this size overlap freely.
const SMALL_PROCS: u32 = 64;

/// The custom rule: ≤ 64-process jobs are admitted concurrently, larger
/// jobs wait their turn. Everything else (queue order, interruption
/// handling, delay timeouts) keeps the paper-faithful defaults.
#[derive(Debug, Clone)]
struct SmallJobsOverlap;

impl ArbitrationPolicy for SmallJobsOverlap {
    fn spec(&self) -> PolicySpec {
        PolicySpec::with_arg("small-jobs-overlap", format!("procs<={SMALL_PROCS}"))
    }

    fn on_request(&mut self, app: AppId, view: &ArbiterView<'_>) -> RequestDecision {
        match view.info_for(app) {
            Some(info) if info.procs <= SMALL_PROCS => RequestDecision::Admit,
            _ => RequestDecision::Queue,
        }
    }

    fn clone_policy(&self) -> Box<dyn ArbitrationPolicy> {
        Box::new(self.clone())
    }
}

fn main() {
    // Drive the custom policy through the raw protocol: a big accessor, a
    // small newcomer (admitted alongside) and a big newcomer (queued).
    let pfs = PfsConfig::grid5000_rennes();
    let transport = LocalTransport::new(Arbiter::with_policy(Box::new(SmallJobsOverlap)));
    println!("policy: {}", transport.with(|arb| arb.policy_label()));

    // Strided patterns give the big writers collective-buffering rounds —
    // i.e. coordination points where time-sliced or preempting policies
    // can act; the small job arrives *last*, so queue-ordering policies
    // visibly differ on it.
    let scenario = Scenario::builder(pfs.clone())
        .app(AppConfig::new(
            AppId(0),
            "big-A",
            720,
            AccessPattern::strided(2.0e6, 8),
        ))
        .app(
            AppConfig::new(AppId(1), "big-B", 512, AccessPattern::strided(2.0e6, 8))
                .starting_at_secs(1.0),
        )
        .app(
            AppConfig::new(AppId(2), "small", 48, AccessPattern::contiguous(4.0e6))
                .starting_at_secs(3.0),
        )
        .build()
        .unwrap();

    let mut coordinators: Vec<Coordinator> = scenario
        .apps
        .iter()
        .map(|app| Coordinator::new(app.id, transport.clone()))
        .collect();
    for (coordinator, app) in coordinators.iter_mut().zip(&scenario.apps) {
        coordinator.prepare(calciom::IoInfo::at_phase_start(
            app,
            &scenario.pfs,
            scenario.granularity,
        ));
        let outcome = coordinator.inform();
        println!("{}: Inform() -> {:?}", app.name, outcome);
    }
    assert!(coordinators[0].check(), "first arrival always granted");
    assert!(!coordinators[1].check(), "big-B queues behind big-A");
    assert!(coordinators[2].check(), "small job overlaps the accessor");
    // The queue drains once the file system is free: both accessors
    // release, then big-B gets the slot.
    coordinators[2].release();
    coordinators[0].release();
    assert!(
        coordinators[1].check(),
        "big-B granted once the system frees"
    );
    coordinators[1].release();
    println!("big-B granted after the accessors released; small overlapped throughout");

    // The same contention, simulated end to end under registry policies:
    // fcfs serializes the late small job behind both big writers, srpf
    // lets it jump the queue, and a round-robin quantum time-slices the
    // big writers against each other.
    println!();
    for name in ["fcfs", "srpf", "rr(2s)"] {
        let mut s = scenario.clone();
        s.arbitration = Some(PolicySpec::from_text(name).unwrap());
        let report = s.run().unwrap();
        let small = report.app(AppId(2)).unwrap().first_phase().io_time();
        println!(
            "{:<8} small-job write time {:>6.2} s (makespan {})",
            report.policy_label, small, report.makespan
        );
    }
}
