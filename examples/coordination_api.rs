//! Drives the CALCioM coordination protocol directly through the
//! application-facing API of Section III-C (Prepare / Inform / Check /
//! Wait / Release), without the simulation driver — the way an I/O library
//! or a custom middleware would embed it.
//!
//! The coordinators talk to the shared arbiter through a
//! `CoordinationTransport`. This example uses the thread-safe
//! `SharedTransport`; swap in `LocalTransport` for a single-threaded
//! embedding with identical behaviour.
//!
//! Run with `cargo run --release --example coordination_api`.

use calciom::api::{CoordinationTransport, Coordinator, SharedTransport};
use calciom::{
    AccessOutcome, Arbiter, DynamicPolicy, EfficiencyMetric, Granularity, IoInfo, Strategy,
    YieldOutcome,
};
use pfs::AppId;

fn info(app: AppId, procs: u32, total_secs: f64, remaining_secs: f64) -> IoInfo {
    IoInfo {
        app,
        procs,
        files_total: 4,
        rounds_total: 64,
        bytes_total: 32.0e9,
        bytes_remaining: 32.0e9 * remaining_secs / total_secs,
        est_alone_total_secs: total_secs,
        est_alone_remaining_secs: remaining_secs,
        pfs_share: 1.0,
        granularity: Granularity::Round,
    }
}

fn main() {
    // The shared coordination state; the decision point minimizes the
    // CPU·seconds-wasted metric. SharedTransport is Send + Sync, so these
    // coordinators could live on different threads.
    let transport = SharedTransport::new(Arbiter::new(
        Strategy::Dynamic,
        DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
    ));
    let mut app_a = Coordinator::new(AppId(0), transport.clone());
    let mut app_b = Coordinator::new(AppId(1), transport);

    // Application A (2048 cores, 28 s of I/O ahead) starts its phase.
    app_a.prepare(info(AppId(0), 2048, 28.0, 28.0));
    assert_eq!(app_a.inform(), AccessOutcome::Granted);
    println!("A: Inform() -> granted, starts writing");

    // Application B (2048 cores, 7 s of I/O) arrives while A is writing.
    app_b.prepare(info(AppId(1), 2048, 7.0, 7.0));
    let outcome = app_b.inform();
    println!("B: Inform() -> {outcome:?} (decision pending at A's next coordination point)");
    // The pending-grant invariant: a refused request is queued, not lost.
    assert!(!app_b.wait() && app_b.pending());

    // A reaches its next ADIO-level coordination point with 21 s of work
    // left; interrupting it costs 2048×7 CPU·s, making B wait costs
    // 2048×21 — so A is asked to yield.
    let decision = app_a.yield_point(Some(info(AppId(0), 2048, 28.0, 21.0)));
    println!("A: Release()/Inform()/Check() -> {decision:?}");
    assert_eq!(decision, YieldOutcome::YieldNow);
    assert!(app_b.check(), "B is now authorized");
    println!("B: Check() -> authorized, writes its data");

    // B finishes and releases; A resumes.
    app_b.release();
    assert!(app_a.check());
    println!("B: Release(); A: Check() -> authorized again, resumes its remaining 21 s");
    app_a.release();
    println!("A: Release() at the end of its phase — protocol complete");
}
