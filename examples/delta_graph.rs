//! Builds a Δ-graph (the paper's main experimental device) for a pair of
//! applications of very different sizes and prints it as a table: write
//! time and interference factor of each application versus the start
//! offset dt, for the interfering and coordinated cases.
//!
//! Run with `cargo run --release --example delta_graph`.

use calciom::{AccessPattern, AppConfig, AppId, Error, PfsConfig, Strategy};
use iobench::{dt_range, run_delta_sweep, DeltaSweepConfig, FigureData, Series};

fn main() -> Result<(), Error> {
    // 744 cores versus 24 cores, 16 MB per process as 8 strides of 2 MB
    // (the Fig. 6 workload).
    let pattern = AccessPattern::strided(2.0e6, 8);
    let app_a = AppConfig::new(AppId(0), "App A (744 cores)", 744, pattern);
    let app_b = AppConfig::new(AppId(1), "App B (24 cores)", 24, pattern);

    let mut figure = FigureData::new(
        "Δ-graph: interference factor of the 24-core application",
        "dt (sec)",
        "interference factor",
    );
    for strategy in [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Interrupt,
    ] {
        let cfg = DeltaSweepConfig::new(
            PfsConfig::grid5000_rennes(),
            app_a.clone(),
            app_b.clone(),
            dt_range(-10.0, 20.0, 5.0),
        )
        .with_strategy(strategy);
        let sweep = run_delta_sweep(&cfg)?;
        let mut series = Series::new(strategy.label());
        for point in &sweep.points {
            series.push(point.dt, point.b_factor);
        }
        println!(
            "{}: stand-alone times A = {:.1}s, B = {:.1}s; worst factor for B = {:.1}",
            strategy.label(),
            sweep.a_alone,
            sweep.b_alone,
            sweep.max_b_factor()
        );
        figure.add_series(series);
    }
    println!("\n{}", figure.to_table());
    println!("Interruption keeps the small application's interference factor near 1 for every dt.");
    Ok(())
}
