//! A scenario from the paper's motivation (Section II-E): a large
//! atmospheric simulation writing big periodic checkpoints (CM1-like)
//! shares the machine with a small application writing small files at a
//! much higher frequency (NAMD-like trajectory output).
//!
//! Without coordination the small writer is crowded out whenever its
//! output coincides with a checkpoint; with CALCioM's dynamic strategy the
//! checkpointing application is interrupted only when that improves the
//! machine-wide CPU·seconds metric.
//!
//! Run with `cargo run --release --example checkpoint_vs_analytics`.

use calciom::{
    AccessPattern, AppConfig, AppId, DynamicPolicy, EfficiencyMetric, Error, Granularity,
    PfsConfig, Scenario, Session, Strategy,
};
use simcore::SimDuration;

fn main() -> Result<(), Error> {
    let pfs = PfsConfig::grid5000_rennes();

    // The simulation: 720 cores, a 23 MB/core checkpoint every 3 simulated
    // minutes (scaled down to every 60 s so the example runs three rounds),
    // written as a strided pattern that triggers collective buffering.
    let simulation = AppConfig::new(
        AppId(0),
        "CM1-like checkpointing",
        720,
        AccessPattern::strided(2.3e6, 10),
    )
    .with_periodic_phases(3, SimDuration::from_secs(60.0));

    // The analytics job: 48 cores, 4 MB/core of trajectory output every
    // 15 seconds.
    let analytics = AppConfig::new(
        AppId(1),
        "NAMD-like output",
        48,
        AccessPattern::contiguous(4.0e6),
    )
    .with_periodic_phases(12, SimDuration::from_secs(15.0));

    let alone_analytics = Session::run_alone(
        AppConfig {
            phases: 1,
            ..analytics.clone()
        },
        pfs.clone(),
    )?;

    for strategy in [Strategy::Interfere, Strategy::Dynamic] {
        let scenario = Scenario::builder(pfs.clone())
            .apps([simulation.clone(), analytics.clone()])
            .strategy(strategy)
            .granularity(Granularity::Round)
            .policy(DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted))
            .build()?;
        let report = scenario.run()?;

        let analytics_report = report.app(AppId(1)).unwrap();
        let worst = analytics_report
            .phases
            .iter()
            .map(|p| p.io_time())
            .fold(0.0_f64, f64::max);
        let mean = analytics_report.total_io_seconds() / analytics_report.phases.len() as f64;
        let checkpoints = report.app(AppId(0)).unwrap().total_io_seconds();
        println!(
            "{:<16} analytics output: mean {:.2}s, worst {:.2}s (alone {:.2}s, worst factor {:.1}) \
             | checkpoint I/O total {:.1}s",
            strategy.label(),
            mean,
            worst,
            alone_analytics,
            worst / alone_analytics,
            checkpoints,
        );
    }
    println!(
        "\nCALCioM bounds the worst-case latency of the small frequent writer at a negligible \
         cost to the checkpointing application."
    );
    Ok(())
}
