# calciom-serve — the stateless scenario-execution HTTP service — in a
# container. All dependencies are vendored in-tree, so the build needs no
# network access beyond the base images.
#
#   Build:  docker build -t calciom-serve .
#   Run:    docker run --rm -p 7117:7117 calciom-serve
#   Stop:   docker stop <container>        # graceful: drains in-flight
#                                          # requests before exiting
#
# Every CALCIOM_* knob passes straight through the environment:
#
#   docker run --rm -p 7117:7117 \
#     -e CALCIOM_WORKERS=8 -e CALCIOM_REACTOR=epoll \
#     -e CALCIOM_MAX_CONNS=1024 calciom-serve

FROM rust:1-alpine AS build
RUN apk add --no-cache musl-dev
WORKDIR /src
COPY . .
RUN cargo build --release -p calciom-serve --bin calciom-serve

FROM alpine:3.20
COPY --from=build /src/target/release/calciom-serve /usr/local/bin/calciom-serve
COPY --from=build /src/crates/serve/entrypoint.sh /usr/local/bin/entrypoint.sh
RUN chmod +x /usr/local/bin/entrypoint.sh

# Bind all interfaces inside the container — the binary's 127.0.0.1
# default would be unreachable through the port mapping.
ENV CALCIOM_ADDR=0.0.0.0:7117
EXPOSE 7117

# The entrypoint bridges SIGTERM/SIGINT onto the server's stdin-based
# shutdown channel (see crates/serve/entrypoint.sh), so `docker stop`
# performs a graceful drain.
ENTRYPOINT ["/usr/local/bin/entrypoint.sh"]
