//! Property-based tests on the core invariants of the stack:
//! bandwidth-sharing (max-min fairness), the analytic expectation model,
//! the coordination session, and the exchanged-information encoding.

use calciom::{
    AccessPattern, AppConfig, AppId, Granularity, IoInfo, PfsConfig, Scenario, Session,
    SharePolicy, Strategy,
};
use iobench::expected_times;
use proptest::prelude::*;
use simcore::fluid::{FlowSpec, FluidNetwork};
use simcore::SimDuration;

const MB: f64 = 1.0e6;

fn pfs_for_tests() -> PfsConfig {
    PfsConfig {
        num_servers: 8,
        server_bw: 80.0 * MB,
        cache: None,
        interference_gamma: 0.85,
        process_link_bw: 10.0 * MB,
        interconnect_bw: f64::INFINITY,
        share_policy: SharePolicy::ProportionalToProcesses,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Weighted max-min fairness never over-commits a constraint and never
    /// hands a flow more than its own rate cap.
    #[test]
    fn fluid_rates_respect_capacities_and_caps(
        capacities in prop::collection::vec(1.0f64..1000.0, 1..4),
        flows in prop::collection::vec(
            (1.0f64..1e6, 1.0f64..64.0, 1.0f64..500.0, prop::collection::vec(0usize..4, 1..4)),
            1..12,
        ),
    ) {
        let mut net = FluidNetwork::new();
        let constraint_ids: Vec<_> = capacities.iter().map(|&c| net.add_constraint(c)).collect();
        let mut flow_ids = Vec::new();
        for (bytes, weight, cap, constraints) in &flows {
            let attached: Vec<_> = constraints
                .iter()
                .map(|&i| constraint_ids[i % constraint_ids.len()])
                .collect();
            flow_ids.push(net.add_flow(FlowSpec::new(*bytes, *weight, *cap, attached)));
        }

        // Per-flow invariants.
        let mut usage = vec![0.0f64; capacities.len()];
        for (id, (_, _, cap, constraints)) in flow_ids.iter().zip(&flows) {
            let rate = net.rate(*id);
            prop_assert!(rate >= -1e-9);
            prop_assert!(rate <= cap + 1e-6, "rate {} exceeds cap {}", rate, cap);
            for &c in constraints {
                usage[c % capacities.len()] += rate;
            }
        }
        // A flow attached to several constraints consumes its rate on each
        // of them at most once; recompute usage precisely per constraint.
        let mut usage = vec![0.0f64; capacities.len()];
        for (id, (_, _, _, constraints)) in flow_ids.iter().zip(&flows) {
            let rate = net.rate(*id);
            let mut seen = std::collections::BTreeSet::new();
            for &c in constraints {
                let idx = c % capacities.len();
                if seen.insert(idx) {
                    usage[idx] += rate;
                }
            }
        }
        for (used, cap) in usage.iter().zip(&capacities) {
            prop_assert!(*used <= cap * (1.0 + 1e-6) + 1e-6, "used {} > cap {}", used, cap);
        }
    }

    /// Advancing the network never creates bytes: transferred + remaining
    /// stays equal to the original volume, and remaining never goes
    /// negative.
    #[test]
    fn fluid_advance_conserves_bytes(
        bytes in prop::collection::vec(1.0f64..1e7, 1..8),
        steps in prop::collection::vec(0.01f64..5.0, 1..10),
    ) {
        let mut net = FluidNetwork::new();
        let server = net.add_constraint(50.0 * MB);
        let ids: Vec<_> = bytes
            .iter()
            .map(|&b| net.add_flow(FlowSpec::new(b, 1.0, f64::INFINITY, vec![server])))
            .collect();
        for &s in &steps {
            net.advance(SimDuration::from_secs(s));
        }
        for (id, &b) in ids.iter().zip(&bytes) {
            let p = net.progress(*id).unwrap();
            prop_assert!(p.remaining >= 0.0);
            prop_assert!((p.remaining + p.transferred - b).abs() < 1.0,
                "remaining {} + transferred {} != {}", p.remaining, p.transferred, b);
        }
    }

    /// Differential test of the two sharing media: on an equal-share
    /// topology (one constraint, uncapped flows), the virtual-time model
    /// must agree with the exact max-min solver on *every* observable —
    /// per-flow progress after an arbitrary interleaving of inserts,
    /// pauses, resumes and advances, and the completion time of every
    /// flow — to within integer-tick rounding.
    #[test]
    fn vtfair_matches_fluid_on_equal_share_topologies(
        capacity in 10.0f64..1000.0,
        ops in prop::collection::vec(
            (0usize..4, 1.0f64..1e5, 1.0f64..8.0, 0.01f64..20.0),
            1..40,
        ),
    ) {
        use simcore::fair::VtFairNetwork;

        let mut fluid = FluidNetwork::new();
        let mut fair = VtFairNetwork::new();
        let cf = fluid.add_constraint(capacity);
        let cv = fair.add_constraint(capacity);
        // Paired handles: ops are mirrored verbatim on both networks.
        let mut pairs = Vec::new();
        let mut clock = 0.0f64;
        let mut done_f = std::collections::BTreeMap::new();
        let mut done_v = std::collections::BTreeMap::new();
        let drain = |fluid: &mut FluidNetwork,
                         fair: &mut VtFairNetwork,
                         clock: f64,
                         done_f: &mut std::collections::BTreeMap<_, f64>,
                         done_v: &mut std::collections::BTreeMap<_, f64>| {
            for id in fluid.drain_completed() {
                done_f.insert(id, clock);
            }
            for id in fair.drain_completed() {
                done_v.insert(id, clock);
            }
        };
        for (op, bytes, pick, secs) in &ops {
            match op {
                0 => {
                    let weight = pick.floor();
                    pairs.push((
                        fluid.add_flow(FlowSpec::new(*bytes, weight, f64::INFINITY, vec![cf])),
                        fair.add_flow(FlowSpec::new(*bytes, weight, f64::INFINITY, vec![cv])),
                    ));
                }
                1 if !pairs.is_empty() => {
                    let (a, b) = pairs[(*pick as usize) % pairs.len()];
                    fluid.pause_flow(a);
                    fair.pause_flow(b);
                }
                2 if !pairs.is_empty() => {
                    let (a, b) = pairs[(*pick as usize) % pairs.len()];
                    fluid.resume_flow(a);
                    fair.resume_flow(b);
                }
                3 => {
                    let dt = SimDuration::from_secs(*secs);
                    fluid.advance(dt);
                    fair.advance(dt);
                    clock += dt.as_secs();
                    drain(&mut fluid, &mut fair, clock, &mut done_f, &mut done_v);
                }
                _ => {}
            }
        }

        // Mid-stream progress must already agree.
        for &(a, b) in &pairs {
            let (pa, pb) = (fluid.progress(a), fair.progress(b));
            if let (Some(pa), Some(pb)) = (pa, pb) {
                prop_assert!(
                    (pa.transferred - pb.transferred).abs()
                        <= 1e-6 * pa.transferred.abs().max(1.0) + 1e-3,
                    "progress diverged: fluid {} vs vt-fair {}",
                    pa.transferred,
                    pb.transferred,
                );
            }
        }

        // Resume everything, then run both networks dry: each flow must
        // complete at the same instant on both media.
        for &(a, b) in &pairs {
            fluid.resume_flow(a);
            fair.resume_flow(b);
        }
        drain(&mut fluid, &mut fair, clock, &mut done_f, &mut done_v);
        let mut guard = 0;
        while let Some(dt) = fluid.time_to_next_completion() {
            let dt = dt.max(SimDuration::from_ticks(1));
            fluid.advance(dt);
            fair.advance(dt);
            clock += dt.as_secs();
            drain(&mut fluid, &mut fair, clock, &mut done_f, &mut done_v);
            guard += 1;
            prop_assert!(guard < 10_000, "fluid drain failed to converge");
        }
        // Tick rounding may leave the other medium a straggler completion
        // one tick away; run it dry on the same clock.
        while let Some(dt) = fair.time_to_next_completion() {
            let dt = dt.max(SimDuration::from_ticks(1));
            fair.advance(dt);
            clock += dt.as_secs();
            for id in fair.drain_completed() {
                done_v.insert(id, clock);
            }
            guard += 1;
            prop_assert!(guard < 10_000, "vt-fair drain failed to converge");
        }
        for &(a, b) in &pairs {
            let (ta, tb) = (done_f.get(&a), done_v.get(&b));
            prop_assert!(ta.is_some() && tb.is_some(),
                "a flow finished on one medium only: fluid {ta:?}, vt-fair {tb:?}");
            let (ta, tb) = (ta.unwrap(), tb.unwrap());
            prop_assert!(
                (ta - tb).abs() <= 1e-6 * ta.max(*tb) + 1e-5,
                "completion times diverged: fluid {ta} vs vt-fair {tb}"
            );
        }
    }

    /// The proportional-sharing expectation is symmetric, never faster than
    /// running alone, and never slower than full serialization.
    #[test]
    fn expected_times_are_bounded_and_symmetric(
        ta in 0.5f64..100.0,
        tb in 0.5f64..100.0,
        dt in -120.0f64..120.0,
        wa in 1.0f64..2048.0,
        wb in 1.0f64..2048.0,
    ) {
        let e = expected_times(ta, tb, dt, wa, wb);
        prop_assert!(e.a >= ta - 1e-9);
        prop_assert!(e.b >= tb - 1e-9);
        prop_assert!(e.a <= ta + tb + 1e-9);
        prop_assert!(e.b <= ta + tb + 1e-9);
        let mirrored = expected_times(tb, ta, -dt, wb, wa);
        prop_assert!((e.a - mirrored.b).abs() < 1e-6);
        prop_assert!((e.b - mirrored.a).abs() < 1e-6);
    }

    /// The exchanged information survives the flat (key, value) encoding of
    /// the paper's MPI_Info representation.
    #[test]
    fn io_info_round_trips_through_pairs(
        app in 0usize..64,
        procs in 1u32..200_000,
        files in 1u32..64,
        rounds in 1u32..4096,
        total in 0.0f64..1e13,
        frac in 0.0f64..1.0,
        alone in 0.0f64..1e5,
        share in 0.0f64..1.0,
    ) {
        let info = IoInfo {
            app: AppId(app),
            procs,
            files_total: files,
            rounds_total: rounds,
            bytes_total: total,
            bytes_remaining: total * frac,
            est_alone_total_secs: alone,
            est_alone_remaining_secs: alone * frac,
            pfs_share: share,
            granularity: Granularity::File,
        };
        let back = IoInfo::from_pairs(&info.to_pairs()).unwrap();
        prop_assert_eq!(back, info);
    }
}

proptest! {
    // Full-stack properties run fewer cases: each case is a complete
    // simulation.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any two-application scenario and any strategy: interference
    /// factors are at least 1, every byte is written, and coordinated runs
    /// never finish the pair later than letting them interfere would
    /// (within tolerance), because coordination is work-conserving.
    #[test]
    fn session_invariants_hold_for_random_scenarios(
        procs_a in 16u32..512,
        procs_b in 8u32..256,
        mb_a in 1.0f64..24.0,
        mb_b in 1.0f64..24.0,
        dt in 0.0f64..10.0,
        strided in any::<bool>(),
        strategy_pick in 0usize..4,
    ) {
        let pattern_a = if strided {
            AccessPattern::strided(mb_a * MB / 4.0, 4)
        } else {
            AccessPattern::contiguous(mb_a * MB)
        };
        let pattern_b = AccessPattern::contiguous(mb_b * MB);
        let a = AppConfig::new(AppId(0), "A", procs_a, pattern_a);
        let b = AppConfig::new(AppId(1), "B", procs_b, pattern_b).starting_at_secs(dt);
        let strategy = [
            Strategy::Interfere,
            Strategy::FcfsSerialize,
            Strategy::Interrupt,
            Strategy::Dynamic,
        ][strategy_pick];

        let pfs = pfs_for_tests();
        let alone_a = Session::run_alone(a.clone(), pfs.clone()).unwrap();
        let alone_b = Session::run_alone(b.clone(), pfs.clone()).unwrap();
        let report = Scenario::builder(pfs)
            .apps([a.clone(), b.clone()])
            .strategy(strategy)
            .build()
            .unwrap()
            .run()
            .unwrap();

        let ra = report.app(AppId(0)).unwrap();
        let rb = report.app(AppId(1)).unwrap();
        // No application is faster than alone (within a small tolerance).
        prop_assert!(ra.first_phase().io_time() >= alone_a * 0.999);
        prop_assert!(rb.first_phase().io_time() >= alone_b * 0.999);
        // Every byte accounted for.
        prop_assert!((ra.first_phase().bytes - a.bytes_per_phase()).abs() < 1.0);
        prop_assert!((rb.first_phase().bytes - b.bytes_per_phase()).abs() < 1.0);
        // The makespan never exceeds full serialization of both phases plus
        // the start offset (coordination never idles the file system while
        // work is pending).
        let serial_bound = alone_a + alone_b + dt + 1.0;
        prop_assert!(
            report.makespan.as_secs() <= serial_bound * 1.6,
            "makespan {} vs serial bound {}",
            report.makespan.as_secs(),
            serial_bound
        );
    }
}

proptest! {
    // Every case simulates a whole machine mix under *every* registered
    // policy, so a small case count still covers hundreds of sessions.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Starvation freedom of the arbitration layer: on any random
    /// 3–8-application machine mix, every policy the standard registry
    /// knows drives every session to completion before the horizon — no
    /// deadlock, no starved application, and (the pending-grant invariant
    /// at end of run) a drained parked set, observable as every
    /// application finishing all of its phases.
    #[test]
    fn every_registered_policy_is_starvation_free(
        napps in 3usize..9,
        seed in 0u64..10_000,
    ) {
        use workloads::MachineMix;

        let mix = MachineMix {
            apps: napps,
            seed,
            max_procs: 512,
            bytes_per_proc: (0.5 * MB, 2.0 * MB),
            start_window_secs: 10.0,
            ..MachineMix::default()
        };
        let registry = calciom::PolicyRegistry::standard();
        for spec in registry.canonical_specs() {
            let scenario = mix.scenario_with_policy(spec.clone());
            let report = scenario.run().unwrap_or_else(|e| {
                panic!("{spec}: mix(napps={napps}, seed={seed}) failed: {e}")
            });
            prop_assert_eq!(report.apps.len(), napps);
            for (app_cfg, app_report) in scenario.apps.iter().zip(&report.apps) {
                prop_assert!(
                    app_report.phases.len() == app_cfg.phases as usize,
                    "{}: app {} finished {} of {} phases",
                    spec.to_text(),
                    app_cfg.id,
                    app_report.phases.len(),
                    app_cfg.phases
                );
            }
            prop_assert!(
                report.makespan.as_secs() <= scenario.horizon.as_secs(),
                "{}: makespan beyond the horizon", spec.to_text()
            );
            prop_assert_eq!(report.policy_label.clone(), spec.to_text());
        }
    }

    /// Starvation freedom of the hierarchical arbiter: on any random
    /// 2–4-machine cluster mix — random per-machine populations, slot
    /// counts and cross-arbiter latencies — every application on every
    /// machine finishes all of its phases before the horizon. The FIFO
    /// root queue plus quantum rotation guarantees every leaf's turn
    /// comes, whatever the draw.
    #[test]
    fn hierarchical_arbitration_is_starvation_free(
        machines in 2usize..5,
        napps in 2usize..5,
        slots in 1u32..3,
        latency_ms in 0u64..2_000,
        seed in 0u64..10_000,
    ) {
        use workloads::{ClusterMix, MachineMix};

        let mix = ClusterMix {
            machines,
            apps_per_machine: napps,
            template: MachineMix {
                seed,
                max_procs: 512,
                bytes_per_proc: (0.5 * MB, 2.0 * MB),
                start_window_secs: 10.0,
                ..MachineMix::default()
            },
            slots: slots.min(machines as u32),
            latency_secs: latency_ms as f64 / 1000.0,
            ..ClusterMix::default()
        };
        let scenario = mix.scenario_hierarchical(Strategy::FcfsSerialize);
        let report = scenario.run().unwrap_or_else(|e| {
            panic!("cluster mix(machines={machines}, napps={napps}, slots={slots}, \
                    latency_ms={latency_ms}, seed={seed}) failed: {e}")
        });
        prop_assert_eq!(report.apps.len(), machines * napps);
        for (app_cfg, app_report) in scenario.apps.iter().zip(&report.apps) {
            prop_assert!(
                app_report.phases.len() == app_cfg.phases as usize,
                "app {} ({}) starved: finished {} of {} phases",
                app_cfg.id,
                app_cfg.name,
                app_report.phases.len(),
                app_cfg.phases
            );
        }
        prop_assert!(
            report.makespan.as_secs() <= scenario.horizon.as_secs(),
            "makespan beyond the horizon"
        );
    }

    /// The policy name/argument codec round-trips for every registered
    /// policy, including randomly parameterized time arguments: text →
    /// spec → policy → spec → text is the identity.
    #[test]
    fn policy_registry_codec_round_trips(
        secs in 0.125f64..600.0,
    ) {
        use calciom::{DynamicPolicy, PolicySpec};

        let registry = calciom::PolicyRegistry::standard();
        let dynamic = DynamicPolicy::default();
        let mut specs = registry.canonical_specs();
        // Randomly parameterized time arguments (shortest-float repr).
        specs.push(PolicySpec::with_arg("delay", format!("{secs}s")));
        specs.push(PolicySpec::with_arg("rr", format!("{secs}s")));
        for spec in specs {
            let text = spec.to_text();
            let parsed = PolicySpec::from_text(&text)
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            prop_assert_eq!(&parsed, &spec);
            let policy = registry
                .build(&parsed, &dynamic)
                .unwrap_or_else(|e| panic!("{text}: {e}"));
            prop_assert_eq!(policy.spec().to_text(), text.clone());
            prop_assert_eq!(policy.label(), text);
        }
    }
}
