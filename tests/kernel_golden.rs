//! Golden regression guard for the execution core.
//!
//! Every scenario below is recorded through a [`TraceRecorder`] and the
//! exact text encoding of the resulting trace is hashed (FNV-1a 64). The
//! expected hashes were captured from the pre-kernel stepping loop, so a
//! refactor of the execution core (the `simcore::Kernel` re-founding)
//! passes this suite only if it reproduces every event of every scenario
//! — timestamps, order and payloads — bit for bit. The trace fully
//! determines the [`SessionReport`] (the report is a fold of the stream),
//! so report equality comes for free.

use calciom_stack::calciom::{
    AccessPattern, AppConfig, AppId, Granularity, PfsConfig, Scenario, Session, Strategy,
    TraceRecorder,
};
use calciom_stack::simcore::SimDuration;

const MB: f64 = 1.0e6;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn trace_hash(scenario: &Scenario) -> u64 {
    let mut recorder = TraceRecorder::for_scenario(scenario);
    let report = Session::new(scenario)
        .unwrap()
        .execute_with(&mut recorder)
        .unwrap();
    let trace = recorder.into_trace();
    assert_eq!(
        trace.replay_report(),
        report,
        "trace must replay its report"
    );
    fnv1a64(trace.to_text().as_bytes())
}

/// The golden matrix: label, expected hash, scenario.
fn matrix() -> Vec<(&'static str, u64, Scenario)> {
    let contended = |strategy: Strategy| {
        let a = AppConfig::new(AppId(0), "App A", 720, AccessPattern::strided(2.0 * MB, 8));
        let b = AppConfig::new(AppId(1), "App B", 48, AccessPattern::contiguous(8.0 * MB))
            .starting_at_secs(2.0);
        Scenario::builder(PfsConfig::grid5000_rennes())
            .apps([a, b])
            .strategy(strategy)
            .granularity(Granularity::Round)
            .build()
            .unwrap()
    };
    let file_level = |strategy: Strategy| {
        let a = AppConfig::new(AppId(0), "big", 512, AccessPattern::contiguous(16.0 * MB))
            .with_files(4);
        let b = AppConfig::new(AppId(1), "small", 512, AccessPattern::contiguous(16.0 * MB))
            .starting_at_secs(4.0);
        Scenario::builder(PfsConfig::grid5000_rennes())
            .apps([a, b])
            .strategy(strategy)
            .granularity(Granularity::File)
            .build()
            .unwrap()
    };
    let periodic_cache = {
        let writer = |id: usize, period: f64| {
            AppConfig::new(AppId(id), "w", 336, AccessPattern::contiguous(16.0 * MB))
                .with_periodic_phases(4, SimDuration::from_secs(period))
        };
        Scenario::builder(PfsConfig::grid5000_nancy())
            .apps([writer(0, 10.0), writer(1, 7.0)])
            .build()
            .unwrap()
    };
    let delay_phases = {
        let a = AppConfig::new(AppId(0), "A", 336, AccessPattern::contiguous(16.0 * MB))
            .with_periodic_phases(2, SimDuration::from_secs(12.0));
        let b = AppConfig::new(AppId(1), "B", 48, AccessPattern::contiguous(8.0 * MB))
            .starting_at_secs(1.0)
            .with_periodic_phases(2, SimDuration::from_secs(12.0));
        Scenario::builder(PfsConfig::grid5000_rennes())
            .apps([a, b])
            .strategy(Strategy::Delay {
                max_wait_secs: 15.0,
            })
            .build()
            .unwrap()
    };
    let three_way = {
        let pattern = AccessPattern::strided(2.0 * MB, 8);
        Scenario::builder(PfsConfig::surveyor())
            .app(AppConfig::new(AppId(0), "A", 2048, pattern))
            .app(AppConfig::new(AppId(1), "B", 1024, pattern).starting_at_secs(1.5))
            .app(AppConfig::new(AppId(2), "C", 512, pattern).starting_at_secs(3.0))
            .strategy(Strategy::Dynamic)
            .build()
            .unwrap()
    };

    vec![
        (
            "interfere",
            0x1665_7876_e8d1_a33c,
            contended(Strategy::Interfere),
        ),
        (
            "fcfs",
            0xf308_62a6_2519_4c8b,
            contended(Strategy::FcfsSerialize),
        ),
        (
            "interrupt",
            0x192b_9a5b_62a7_185c,
            contended(Strategy::Interrupt),
        ),
        (
            "delay",
            0xee61_ed94_cc20_ae7f,
            contended(Strategy::Delay { max_wait_secs: 2.0 }),
        ),
        (
            "dynamic-file",
            0x057e_5faf_ab8c_e70d,
            file_level(Strategy::Dynamic),
        ),
        (
            "interrupt-file",
            0x667a_3bfe_38f3_8e2e,
            file_level(Strategy::Interrupt),
        ),
        ("periodic-cache", 0xa4b7_11e6_cda6_9c63, periodic_cache),
        ("delay-phases", 0x4d03_6856_bbf6_84dc, delay_phases),
        ("dynamic-3way", 0xe08b_2f10_eabd_0708, three_way),
    ]
}

#[test]
fn traces_match_the_pre_kernel_goldens() {
    let mut failures = Vec::new();
    for (label, expected, scenario) in matrix() {
        let hash = trace_hash(&scenario);
        if hash != expected {
            failures.push(format!(
                "{label}: expected {expected:#018x}, got {hash:#018x}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "trace hashes diverged from the pre-kernel execution core:\n{}",
        failures.join("\n")
    );
}

#[test]
fn fair_fast_medium_reproduces_the_goldens_without_progress_samples() {
    use calciom_stack::calciom::{SharingModel, SimEvent, SimObserver};
    use calciom_stack::simcore::SimTime;

    // The golden matrix is equal-share at every server (uniform client
    // cap / share weight ratio per group), where the virtual-time medium
    // is exact, not approximate: every discrete decision — timestamps,
    // order, payloads — must match the max-min solver bit for bit.
    // Progress samples are excluded: they carry full-precision f64 rates
    // whose last ulps legitimately differ between the two solvers'
    // arithmetic.
    struct NoProgress(TraceRecorder);
    impl SimObserver for NoProgress {
        fn on_event(&mut self, at: SimTime, event: &SimEvent) {
            self.0.on_event(at, event);
        }
        fn wants_progress(&self) -> bool {
            false
        }
    }
    let hash = |scenario: &Scenario| {
        let mut rec = NoProgress(TraceRecorder::for_scenario(scenario));
        Session::new(scenario)
            .unwrap()
            .execute_with(&mut rec)
            .unwrap();
        fnv1a64(rec.0.into_trace().to_text().as_bytes())
    };
    for (label, _, scenario) in matrix() {
        let mut fair = scenario.clone();
        fair.medium = SharingModel::FairFast;
        assert_eq!(
            hash(&fair),
            hash(&scenario),
            "{label}: fair-fast event stream diverged from max-min"
        );
    }
}

#[test]
fn registry_built_policies_match_the_goldens_too() {
    // The compatibility contract of the open arbitration layer: running a
    // golden scenario through `arbitration = <spec>` (the policy registry
    // path) instead of the legacy `strategy` field produces the exact
    // same schedule — identical per-app reports, message counts and
    // makespans, and even the same policy label.
    for (label, _, scenario) in matrix() {
        let legacy = scenario.run().unwrap();
        let mut by_spec = scenario.clone();
        by_spec.arbitration = Some(scenario.strategy.spec());
        let spec_run = by_spec.run().unwrap();
        assert_eq!(spec_run.apps, legacy.apps, "{label}: apps diverged");
        assert_eq!(
            spec_run.coordination_messages, legacy.coordination_messages,
            "{label}: message accounting diverged"
        );
        assert_eq!(spec_run.makespan, legacy.makespan, "{label}");
        assert_eq!(spec_run.policy_label, legacy.policy_label, "{label}");
    }
}

#[test]
fn single_machine_cluster_matches_the_goldens_bit_for_bit() {
    use calciom_stack::calciom::{ClusterSpec, ClusterTransport, MachineSpec};

    // The exactness envelope of the hierarchical arbiter: a tree with one
    // leaf holding its slot from the start and zero cross-arbiter latency
    // never consults the root, so the schedule — every timestamp, order
    // and payload of every golden scenario — must match the flat arbiter
    // bit for bit. The trace text excludes the cluster header line by
    // hashing the flat scenario's encoding, so the hashes below are the
    // same pinned constants as `traces_match_the_pre_kernel_goldens`.
    for (label, expected, scenario) in matrix() {
        let mut clustered = scenario.clone();
        clustered.cluster = Some(ClusterSpec::new(
            1,
            vec![MachineSpec {
                latency: SimDuration::ZERO,
                apps: clustered.apps.iter().map(|a| a.id).collect(),
            }],
        ));
        let mut recorder = TraceRecorder::for_scenario(&scenario);
        let report = Session::<ClusterTransport>::with_transport(&clustered)
            .unwrap()
            .execute_with(&mut recorder)
            .unwrap();
        let hash = fnv1a64(recorder.into_trace().to_text().as_bytes());
        assert_eq!(
            hash, expected,
            "{label}: 1-machine cluster diverged from the flat arbiter"
        );
        assert_eq!(
            report,
            scenario.run().unwrap(),
            "{label}: cluster report diverged"
        );
    }
}

#[test]
fn shared_transport_matches_the_goldens_too() {
    for (label, _, scenario) in matrix() {
        assert_eq!(
            scenario.run().unwrap(),
            scenario.run_shared().unwrap(),
            "{label}: shared transport diverged"
        );
    }
}
