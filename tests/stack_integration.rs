//! Cross-crate integration tests: the whole stack (workload model → MPI-IO
//! plans → parallel file system → CALCioM coordination) exercised through
//! the public API, checking the paper's headline claims end to end.

use calciom::{
    AccessPattern, AppConfig, AppId, DynamicPolicy, EfficiencyMetric, Granularity, PfsConfig,
    Scenario, Session, Strategy,
};
use iobench::{compare_strategies, dt_range, run_delta_sweep, DeltaSweepConfig};
use std::collections::BTreeMap;

const MB: f64 = 1.0e6;

/// The paper's abstract: "CALCioM is able to prevent a 14× slowdown of a
/// small application competing with a larger one, at a negligible cost for
/// the latter, by allowing the interruption of its ongoing I/O operations."
#[test]
fn headline_claim_small_application_rescued_by_interruption() {
    let pattern = AccessPattern::strided(2.0 * MB, 8);
    let pfs = PfsConfig::grid5000_rennes();
    let big = AppConfig::new(AppId(0), "big", 744, pattern);
    let small = AppConfig::new(AppId(1), "small", 24, pattern).starting_at_secs(3.0);

    let cmp = compare_strategies(
        &pfs,
        &[big, small],
        &[Strategy::Interfere, Strategy::Interrupt],
        Granularity::Round,
        DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted),
    )
    .unwrap();

    let small_interfering = cmp.factor(Strategy::Interfere, AppId(1)).unwrap();
    let small_interrupt = cmp.factor(Strategy::Interrupt, AppId(1)).unwrap();
    let big_interrupt = cmp.factor(Strategy::Interrupt, AppId(0)).unwrap();

    // Without coordination the small application suffers a large slowdown
    // (the paper reports up to 14×; the exact value depends on the platform
    // calibration).
    assert!(
        small_interfering > 6.0,
        "uncoordinated slowdown of the small app: {small_interfering}"
    );
    // With interruption it is almost unaffected...
    assert!(
        small_interrupt < 2.0,
        "interruption should rescue the small app, factor {small_interrupt}"
    );
    // ...at a small cost for the big application (it pays roughly the small
    // application's write time).
    assert!(
        big_interrupt < 1.3,
        "cost for the big application should be small, factor {big_interrupt}"
    );
}

/// Section IV-B: serializing two large identical accesses impacts only the
/// application arriving second, and the first keeps its stand-alone time.
#[test]
fn fcfs_serialization_protects_the_first_arriver() {
    let pattern = AccessPattern::contiguous(32.0 * MB);
    let a = AppConfig::new(AppId(0), "A", 2048, pattern);
    let b = AppConfig::new(AppId(1), "B", 2048, pattern);
    let cfg = DeltaSweepConfig::new(PfsConfig::surveyor(), a, b, dt_range(2.0, 10.0, 4.0))
        .with_strategy(Strategy::FcfsSerialize);
    let sweep = run_delta_sweep(&cfg).unwrap();
    for p in &sweep.points {
        assert!(
            (p.a_io_time - sweep.a_alone).abs() / sweep.a_alone < 0.05,
            "dt={}: A={} alone={}",
            p.dt,
            p.a_io_time,
            sweep.a_alone
        );
        assert!(
            p.b_io_time > sweep.b_alone * 1.3,
            "dt={}: B={}",
            p.dt,
            p.b_io_time
        );
    }
}

/// Section IV-D: the dynamic choice implements the paper's decision rule
/// and never loses to either fixed strategy on the configured metric.
#[test]
fn dynamic_choice_is_never_worse_than_fixed_strategies() {
    let pattern = AccessPattern::strided(4.0 * MB, 1);
    let pfs = PfsConfig::surveyor();
    let a = AppConfig::new(AppId(0), "A", 2048, pattern).with_files(4);
    let b = AppConfig::new(AppId(1), "B", 2048, pattern).with_files(1);

    for dt in [4.0, 12.0, 20.0] {
        let mut b_dt = b.clone();
        b_dt.start = simcore::SimTime::from_secs(dt);
        let alone: BTreeMap<AppId, f64> = BTreeMap::from([
            (
                AppId(0),
                Session::run_alone(a.clone(), pfs.clone()).unwrap(),
            ),
            (
                AppId(1),
                Session::run_alone(b_dt.clone(), pfs.clone()).unwrap(),
            ),
        ]);
        let metric = |strategy: Strategy| -> f64 {
            Scenario::builder(pfs.clone())
                .apps([a.clone(), b_dt.clone()])
                .strategy(strategy)
                .granularity(Granularity::File)
                .policy(DynamicPolicy::new(EfficiencyMetric::CpuSecondsWasted))
                .build()
                .unwrap()
                .run()
                .unwrap()
                .metric(EfficiencyMetric::CpuSecondsWasted, &alone)
        };
        let dynamic = metric(Strategy::Dynamic);
        let fcfs = metric(Strategy::FcfsSerialize);
        let interrupt = metric(Strategy::Interrupt);
        assert!(
            dynamic <= 1.05 * fcfs.min(interrupt),
            "dt={dt}: dynamic={dynamic} fcfs={fcfs} interrupt={interrupt}"
        );
    }
}

/// The motivation chain of Section II: the synthetic Intrepid-like trace
/// has many small jobs and enough concurrency that interference is likely,
/// and that likelihood feeds the Section II-B formula.
#[test]
fn workload_analysis_motivates_coordination() {
    let trace = workloads::generate(&workloads::SyntheticTraceConfig {
        jobs: 5_000,
        ..Default::default()
    });
    assert!(trace.fraction_of_jobs_at_most(2048) > 0.4);
    let concurrency = workloads::ConcurrencyDistribution::from_trace(&trace);
    assert!(concurrency.mean() > 3.0);
    let p = workloads::probability_concurrent_io(&concurrency, 0.05);
    assert!(p > 0.3, "interference probability {p}");
}

/// The whole stack stays consistent: bytes accounted by the file system
/// match what the applications asked to write, for every strategy.
#[test]
fn bytes_written_are_conserved_across_strategies() {
    let pattern = AccessPattern::strided(1.0 * MB, 8);
    let apps = vec![
        AppConfig::new(AppId(0), "A", 256, pattern),
        AppConfig::new(AppId(1), "B", 64, pattern).starting_at_secs(1.0),
    ];
    for strategy in [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Interrupt,
        Strategy::Dynamic,
        Strategy::Delay { max_wait_secs: 2.0 },
    ] {
        let report = Scenario::builder(PfsConfig::grid5000_rennes())
            .apps(apps.clone())
            .strategy(strategy)
            .build()
            .unwrap()
            .run()
            .unwrap();
        for (report_app, cfg) in report.apps.iter().zip(&apps) {
            let written: f64 = report_app.phases.iter().map(|p| p.bytes).sum();
            assert!(
                (written - cfg.bytes_per_phase()).abs() < 1.0,
                "{:?}: app {} wrote {} expected {}",
                strategy,
                cfg.name,
                written,
                cfg.bytes_per_phase()
            );
            // Nothing finishes before it started, and every phase has
            // positive duration.
            for phase in &report_app.phases {
                assert!(phase.end >= phase.io_start);
                assert!(phase.io_start >= phase.requested_start);
                assert!(phase.io_time() > 0.0);
            }
        }
    }
}

/// Coordination comes with bounded message counts (a few per yield point),
/// not with chatter proportional to the data volume.
#[test]
fn coordination_message_count_is_modest() {
    let pattern = AccessPattern::strided(2.0 * MB, 8);
    let apps = vec![
        AppConfig::new(AppId(0), "A", 720, pattern),
        AppConfig::new(AppId(1), "B", 48, pattern).starting_at_secs(1.0),
    ];
    let report = Scenario::builder(PfsConfig::grid5000_rennes())
        .apps(apps)
        .strategy(Strategy::Interrupt)
        .granularity(Granularity::Round)
        .build()
        .unwrap()
        .run()
        .unwrap();
    // One update + one check per round-level yield point for each app, plus
    // the request/release handshakes: well under a thousand messages for
    // this workload, and completely independent of the bytes moved.
    assert!(report.coordination_messages > 4);
    assert!(
        report.coordination_messages < 1000,
        "messages: {}",
        report.coordination_messages
    );
}
