//! Whole-stack tests of the Scenario/Experiment API redesign:
//!
//! * a scenario built with the fluent builder, serialized to text and
//!   decoded again reproduces its `SessionReport` **bit for bit** (the
//!   determinism convention of DESIGN.md: integer-tick clock, no
//!   randomness, order-independent event handling);
//! * the thread-safe `SharedTransport` sweep path of `iobench` produces
//!   reports identical to the sequential `LocalTransport` path while
//!   genuinely running sessions on at least two worker threads;
//! * the observable-session layer obeys the same convention: the recorded
//!   `Trace` is identical across transports and repeated runs, its text
//!   codec round-trips exactly, and replaying it re-derives the
//!   originating report bit for bit.

use calciom::{
    AccessPattern, AppConfig, AppId, DynamicPolicy, EfficiencyMetric, Granularity, PfsConfig,
    Scenario, Session, SessionReport, SharedTransport, Strategy, Trace, TraceRecorder,
};
use iobench::{parallel_map_owned, run_scenarios, run_scenarios_traced};
use simcore::SimDuration;
use std::collections::HashSet;
use std::sync::Mutex;

const MB: f64 = 1.0e6;

fn scenarios_under_test() -> Vec<Scenario> {
    let strided = AccessPattern::strided(2.0 * MB, 8);
    let contiguous = AccessPattern::contiguous(16.0 * MB);
    vec![
        // The Fig. 6 headline workload: big vs small, uncoordinated.
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(AppId(0), "big", 744, strided))
            .app(AppConfig::new(AppId(1), "small", 24, strided).starting_at_secs(3.0))
            .build()
            .unwrap(),
        // Interruption at file granularity with a multi-file writer.
        Scenario::builder(PfsConfig::surveyor())
            .app(
                AppConfig::new(AppId(0), "A", 2048, AccessPattern::strided(4.0 * MB, 1))
                    .with_files(4),
            )
            .app(AppConfig::new(
                AppId(1),
                "B",
                2048,
                AccessPattern::strided(4.0 * MB, 1),
            ))
            .strategy(Strategy::Interrupt)
            .granularity(Granularity::File)
            .build()
            .unwrap(),
        // Periodic writers against a caching backend, bounded delay.
        Scenario::builder(PfsConfig::grid5000_nancy())
            .app(
                AppConfig::new(AppId(0), "periodic", 336, contiguous)
                    .with_periodic_phases(3, SimDuration::from_secs(10.0)),
            )
            .app(AppConfig::new(AppId(1), "burst", 336, contiguous).starting_at_secs(2.0))
            .strategy(Strategy::Delay { max_wait_secs: 2.5 })
            .policy(DynamicPolicy::new(EfficiencyMetric::TotalIoTime))
            .coordination_overhead(SimDuration::from_millis(5.0))
            .build()
            .unwrap(),
        // Dynamic selection, the CALCioM contribution.
        Scenario::builder(PfsConfig::grid5000_rennes())
            .app(AppConfig::new(AppId(0), "A", 512, strided).with_files(2))
            .app(AppConfig::new(AppId(1), "B", 512, strided).starting_at_secs(4.0))
            .strategy(Strategy::Dynamic)
            .build()
            .unwrap(),
    ]
}

#[test]
fn serde_round_trip_reproduces_reports_bit_identically() {
    for scenario in scenarios_under_test() {
        let text = scenario.to_text();
        let decoded = Scenario::from_text(&text).unwrap();
        assert_eq!(decoded, scenario, "decoded scenario differs");
        // Encoding is stable…
        assert_eq!(decoded.to_text(), text);
        // …and the decoded scenario replays the exact same simulation:
        // SessionReport is all f64s/SimTimes, so PartialEq equality here
        // is bit-identity.
        let original = scenario.run().unwrap();
        let replayed = decoded.run().unwrap();
        assert_eq!(
            replayed, original,
            "round-tripped scenario must reproduce the report bit for bit"
        );
    }
}

#[test]
fn shared_transport_sweep_matches_sequential_and_uses_multiple_threads() {
    let scenarios = scenarios_under_test();

    // Sequential reference over the local (Rc<RefCell>) transport.
    let sequential: Vec<SessionReport> = scenarios.iter().map(|s| s.run().unwrap()).collect();

    // Parallel sweep: sessions built over Arc<Mutex<Arbiter>> on this
    // thread, executed on worker threads. Track which threads actually ran
    // sessions to prove the fan-out is real.
    let seen = Mutex::new(HashSet::new());
    let sessions = scenarios
        .iter()
        .map(|s| Session::<SharedTransport>::with_transport(s).unwrap())
        .collect::<Vec<_>>();
    let parallel: Vec<SessionReport> = parallel_map_owned(sessions, scenarios.len(), |session| {
        seen.lock().unwrap().insert(std::thread::current().id());
        session.execute().unwrap()
    });

    assert_eq!(parallel, sequential, "transport must not change reports");
    assert!(
        seen.lock().unwrap().len() >= 2,
        "the sweep must run sessions on at least two threads"
    );

    // And the high-level helper agrees with both.
    let via_helper = run_scenarios(&scenarios, 0).unwrap();
    assert_eq!(via_helper, sequential);
}

/// The canonical two-app serialize scenario of the trace-determinism
/// checks.
fn serialize_scenario() -> Scenario {
    Scenario::builder(PfsConfig::grid5000_rennes())
        .app(AppConfig::new(
            AppId(0),
            "A",
            336,
            AccessPattern::contiguous(16.0 * MB),
        ))
        .app(
            AppConfig::new(AppId(1), "B", 336, AccessPattern::contiguous(16.0 * MB))
                .starting_at_secs(2.0),
        )
        .strategy(Strategy::FcfsSerialize)
        .build()
        .unwrap()
}

#[test]
fn traces_are_identical_across_transports_and_repeated_runs() {
    let scenario = serialize_scenario();

    let record_local = || {
        let mut recorder = TraceRecorder::for_scenario(&scenario);
        let report = Session::new(&scenario)
            .unwrap()
            .execute_with(&mut recorder)
            .unwrap();
        (report, recorder.into_trace())
    };
    let record_shared = || {
        let mut recorder = TraceRecorder::for_scenario(&scenario);
        let report = Session::<SharedTransport>::with_transport(&scenario)
            .unwrap()
            .execute_with(&mut recorder)
            .unwrap();
        (report, recorder.into_trace())
    };

    let (local_report, local_trace) = record_local();
    let (shared_report, shared_trace) = record_shared();

    // The transport changes neither the report nor the event stream.
    assert_eq!(local_report, shared_report);
    assert_eq!(
        local_trace, shared_trace,
        "trace must be transport-agnostic"
    );
    assert_eq!(local_trace.to_text(), shared_trace.to_text());

    // Repeated runs are bit-identical too.
    let (_, local_again) = record_local();
    let (_, shared_again) = record_shared();
    assert_eq!(local_again, local_trace);
    assert_eq!(shared_again, shared_trace);

    // And the parallel sweep helper records the very same stream even when
    // sessions execute on worker threads.
    let traced = run_scenarios_traced(&[scenario.clone(), scenario.clone()], 2).unwrap();
    for (report, trace) in traced {
        assert_eq!(report, local_report);
        assert_eq!(trace, local_trace);
    }
}

#[test]
fn recorded_traces_replay_and_round_trip_to_the_same_report() {
    for scenario in scenarios_under_test() {
        let mut recorder = TraceRecorder::for_scenario(&scenario);
        let report = Session::new(&scenario)
            .unwrap()
            .execute_with(&mut recorder)
            .unwrap();
        // Observation must not perturb the simulation.
        assert_eq!(report, scenario.run().unwrap());

        let trace = recorder.into_trace();
        // Replay guarantee: the report is a fold of the recorded stream.
        assert_eq!(trace.replay_report(), report);
        // Codec guarantee: decode(encode(trace)) is the identity, down to
        // the replayed report.
        let decoded = Trace::from_text(&trace.to_text()).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.replay_report(), report);
    }
}

#[test]
fn machine_mix_scenarios_obey_the_same_conventions_at_scale() {
    // The N-application generalization of everything above: a seeded
    // 48-app machine mix round-trips through the text codec, reproduces
    // its report bit for bit, and the sharded sweep path (one worker per
    // strategy, shared baseline cache) matches the sequential runs.
    use iobench::{run_scenarios_sharded, BaselineCache};
    use workloads::MachineMix;

    let mix = MachineMix {
        apps: 48,
        seed: 99,
        ..MachineMix::default()
    };
    let strategies = [
        Strategy::Interfere,
        Strategy::FcfsSerialize,
        Strategy::Dynamic,
    ];
    let scenarios: Vec<Scenario> = strategies.iter().map(|s| mix.scenario(*s)).collect();

    // Codec: 48 applications survive text encoding exactly.
    for scenario in &scenarios {
        let decoded = Scenario::from_text(&scenario.to_text()).unwrap();
        assert_eq!(&decoded, scenario);
    }

    // Determinism across the sharded parallel path.
    let sequential: Vec<SessionReport> = scenarios.iter().map(|s| s.run().unwrap()).collect();
    let cache = BaselineCache::new();
    let runs = run_scenarios_sharded(&scenarios, strategies.len(), &cache).unwrap();
    for (run, expected) in runs.iter().zip(&sequential) {
        assert_eq!(&run.report, expected);
        assert_eq!(run.alone.len(), 48);
    }
    // All three strategies share one mix, so the cache serves the same 48
    // baselines to every shard: every request lands in a counter, and the
    // table holds one entry per distinct application.
    assert_eq!(cache.hits() + cache.misses(), 3 * 48);
    assert_eq!(cache.len(), 48);

    // Coordination pays machine-wide (the fig13 story in miniature).
    let alone = &runs[0].alone;
    let waste = |r: &SessionReport| r.metric(EfficiencyMetric::CpuSecondsWasted, alone);
    assert!(
        waste(&sequential[1]) <= waste(&sequential[0]),
        "fcfs ({}) must not waste more CPU than interfering ({})",
        waste(&sequential[1]),
        waste(&sequential[0])
    );
}
