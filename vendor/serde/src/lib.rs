//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds without network access. The repository uses serde
//! only as `#[derive(Serialize, Deserialize)]` markers on config/result
//! types (nothing is actually serialized yet), so this crate provides the
//! two trait names and derives that emit empty marker impls. Swapping in
//! the real serde later is a one-line change in the workspace manifest.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
