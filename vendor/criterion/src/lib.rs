//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API slice used by the workspace benches: `Criterion`
//! with `bench_function` / `benchmark_group` / `sample_size`, `Bencher::
//! iter`, and the `criterion_group!` / `criterion_main!` macros. Instead
//! of criterion's statistical machinery it times `sample_size` batches
//! with `std::time::Instant` and prints mean / min per-iteration times —
//! enough to compare hot paths between commits while building offline.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the configured number of iterations, timing the batch.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level bench driver, as `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_secs_f64() * 1e9;
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // One warm-up iteration, then the timed batch.
        let mut warmup = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
        let mut bencher = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed / self.sample_size as u32;
        println!(
            "bench: {id:<48} {:>12}/iter  ({} iters, total {})",
            format_duration(per_iter),
            self.sample_size,
            format_duration(bencher.elapsed),
        );
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a bench group: both the `name = ..; config = ..; targets = ..`
/// form and the positional form of the real crate.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        g.finish();
    }

    #[test]
    fn harness_runs_benches() {
        let mut c = Criterion::default().sample_size(3);
        sample_bench(&mut c);
    }

    criterion_group!(positional, sample_bench);
    criterion_group!(
        name = named;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    );

    #[test]
    fn groups_execute() {
        positional();
        named();
    }
}
