//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface the workspace's
//! property suites use: the [`proptest!`] macro, range / tuple / collection
//! strategies, [`any`], `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic ChaCha
//! stream whose seed mixes the property name, so failures reproduce
//! exactly across runs; there is no shrinking — the failing inputs are
//! printed instead.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Runner configuration, as in `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A generator for the given property name and case index.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(
            h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }

    /// The underlying word stream.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

/// A value generator: the stand-in for `proptest::strategy::Strategy`.
///
/// Unlike the real crate there is no value tree / shrinking; `generate`
/// directly produces a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Types with a canonical "any value" strategy (`proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.rng().next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        use rand::RngCore;
        rng.rng().next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        use rand::RngCore;
        rng.rng().next_u32()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        use rand::RngCore;
        rng.rng().next_u64()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: vectors of `element` values with length
    /// in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirrors the real crate's `prop` path prefix (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything the property suites import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if cond {} else { panic }` rather than `if !cond` so that the
        // macro stays NaN-correct and clean under clippy at expansion sites
        // (`!(a >= b)` trips neg_cmp_op_on_partial_ord).
        if $cond {
        } else {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if $cond {
        } else {
            panic!("property assertion failed: {}: {}", stringify!($cond), format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a != *b {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            );
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            );
        }
    }};
}

/// The `proptest!` block macro: expands each property into a `#[test]`
/// that draws its arguments from the listed strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $( $arg in $strategy ),* ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.0f64..2.0, n in 3usize..9) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuples_and_any(pair in (0.0f64..1.0, 1u32..4), flag in any::<bool>()) {
            prop_assert!(pair.0 < 1.0);
            prop_assert!(pair.1 >= 1);
            let as_int = u8::from(flag);
            prop_assert!(as_int <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("p", 3);
        let mut b = crate::TestRng::for_case("p", 3);
        let s = 0.0f64..1.0;
        assert_eq!(
            crate::Strategy::generate(&s, &mut a),
            crate::Strategy::generate(&s, &mut b)
        );
    }
}
