//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.8 API this workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits and uniform sampling from
//! half-open ranges of the primitive types. Generators live in sibling
//! crates (see `rand_chacha`).

use std::ops::Range;

/// Core source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable generator, as in rand 0.8.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is negligible for the spans used here
                // (all far below 2^64) and irrelevant for simulation
                // workload synthesis.
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start + draw
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (0.0f64..1.0).sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x = rng.gen_range(5u32..17);
            assert!((5..17).contains(&x));
        }
    }
}
