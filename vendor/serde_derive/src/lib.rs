//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! The workspace builds without network access, so the real serde cannot be
//! fetched. The repository only ever uses `#[derive(Serialize, Deserialize)]`
//! as a forward-compatibility marker — no code path serializes anything yet —
//! so these derives simply emit marker-trait impls for the annotated type.
//!
//! Parsing is intentionally tiny: enough to recover the type name and the
//! names of its generic parameters from the token stream, without `syn`.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(type_name, generic_params)` from the tokens of a
/// struct/enum/union definition, e.g. `pub struct Foo<T: Bound, 'a> { .. }`
/// yields `("Foo", ["T", "'a"])`.
fn parse_item(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    // Skip attributes, visibility and doc comments until the item keyword.
    let mut name = String::new();
    for tt in iter.by_ref() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = n.to_string();
                }
                break;
            }
        }
    }
    // Collect top-level generic parameter names inside `<...>`, if present.
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            let mut expect_param = true;
            let mut lifetime = false;
            for tt in iter.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        expect_param = true;
                        lifetime = false;
                    }
                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 && expect_param => {
                        lifetime = true;
                    }
                    TokenTree::Ident(id) if depth == 1 && expect_param => {
                        let s = id.to_string();
                        if s == "const" {
                            continue; // const generics: keep waiting for the name
                        }
                        generics.push(if lifetime { format!("'{s}") } else { s });
                        expect_param = false;
                        lifetime = false;
                    }
                    _ => {}
                }
            }
        }
    }
    (name, generics)
}

fn impl_marker(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let (name, generics) = parse_item(input);
    if name.is_empty() {
        return TokenStream::new();
    }
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    impl_params.extend(generics.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if generics.is_empty() {
        String::new()
    } else {
        format!("<{}>", generics.join(", "))
    };
    format!("impl{impl_generics} {trait_path} for {name}{ty_generics} {{}}")
        .parse()
        .unwrap_or_default()
}

/// No-op `Serialize` derive: emits an empty marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "::serde::Serialize", None)
}

/// No-op `Deserialize` derive: emits an empty marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    impl_marker(input, "::serde::Deserialize<'de>", Some("'de"))
}
