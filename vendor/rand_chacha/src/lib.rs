//! Offline stand-in for `rand_chacha`.
//!
//! Provides a `ChaCha8Rng` type with the same name and seeding API as the
//! real crate. The implementation is the real ChaCha stream cipher with 8
//! rounds, but the output stream is NOT bit-compatible with the real
//! crate: `seed_from_u64` here zero-pads the 32-byte key (the real crate
//! expands the seed through SplitMix64) and words are consumed in a
//! different order. Runs are deterministic per seed, which is all the
//! workspace relies on — but swapping in the real `rand_chacha` changes
//! every seeded stream, so seed-calibrated test bands (e.g. the synthetic
//! trace fractions) may need re-tuning at that point.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, exposing a `u64` word stream.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state, as 16 little-endian u32 words.
    state: [u32; 16],
    /// Current 64-byte output block, as 16 u32 words.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64) | ((self.state[13] as u64) << 32);
        let counter = counter.wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4] = seed as u32;
        state[5] = (seed >> 32) as u32;
        // key words 6..12, counter 12..14 and nonce 14..16 start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(7);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_are_well_spread() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
