#!/usr/bin/env python3
"""Gate calciom-serve front-end throughput against the committed baseline.

Usage: check_serve_regression.py BENCH_serve.json ci/serve_baseline.json

Reads the freshly measured BENCH_serve.json (produced by `serve_bench
--quick`, which runs the closed-loop and keep-alive phases side by side)
and fails (exit 1) if

  * either phase's throughput fell below the allowed fraction of the
    committed baseline, or
  * the keep-alive speedup over closed-loop fell below the structural
    floor — the whole point of the persistent-connection front end.

The tolerances are deliberately generous (throughput may drop to a third
of baseline, the speedup floor is well under the measured ~3-4x) so the
gate catches architectural regressions — keep-alive silently closing per
request, the reactor fast path gone, a per-response O(n) buffer shuffle —
rather than runner noise: the closed-loop phase finishes 200 requests in
single-digit milliseconds on a small runner, so its req/s swings >2x with
scheduler luck. Mirrors ci/check_scale_regression.py.
"""

import json
import sys

ALLOWED_THROUGHPUT_DROP = 0.67
SPEEDUP_FLOOR_FRACTION = 0.5
SPEEDUP_ABS_FLOOR = 1.5


def main() -> int:
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        measured = json.load(f)
    with open(sys.argv[2]) as f:
        baseline = json.load(f)

    failures = []

    for phase in ("closed_loop", "keep_alive"):
        base = baseline.get(phase, {}).get("rps")
        got = measured.get(phase, {}).get("rps")
        if got is None:
            failures.append(f"{phase}: missing from measurement")
            continue
        limit = base * (1.0 - ALLOWED_THROUGHPUT_DROP)
        verdict = "FAIL" if got < limit else "ok"
        print(
            f"{verdict:4} {phase}: {got:.0f} req/s "
            f"(baseline {base:.0f} req/s, floor {limit:.0f} req/s)"
        )
        if got < limit:
            failures.append(
                f"{phase}: {got:.0f} req/s is below {limit:.0f} req/s "
                f"({ALLOWED_THROUGHPUT_DROP:.0%} under baseline {base:.0f} req/s)"
            )

    base_speedup = baseline["keep_alive"]["speedup_vs_closed_loop"]
    got_speedup = measured.get("keep_alive", {}).get("speedup_vs_closed_loop")
    if got_speedup is None:
        failures.append("keep_alive.speedup_vs_closed_loop: missing from measurement")
    else:
        floor = max(SPEEDUP_ABS_FLOOR, base_speedup * SPEEDUP_FLOOR_FRACTION)
        verdict = "FAIL" if got_speedup < floor else "ok"
        print(
            f"{verdict:4} keep-alive speedup: {got_speedup:.2f}x "
            f"(baseline {base_speedup:.2f}x, floor {floor:.2f}x)"
        )
        if got_speedup < floor:
            failures.append(
                f"keep-alive speedup {got_speedup:.2f}x is below the "
                f"{floor:.2f}x floor (baseline {base_speedup:.2f}x)"
            )

    if failures:
        print("\nserve front-end throughput regression:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("serve front-end throughput within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
