#!/usr/bin/env python3
"""Gate the N=2000 virtual-time medium wall-clock against the committed baseline.

Usage: check_scale_regression.py BENCH_scale.json ci/scale_baseline_n2000.json

Reads the `fair_fast` section of the freshly measured BENCH_scale.json
(produced by `fig13_scale --quick`), picks the N=2000 point of every
coordinated strategy, and fails (exit 1) if any strategy's wall-clock
regressed more than the allowed fraction over the committed baseline.
Improvements and new strategies never fail the gate; a strategy present in
the baseline but missing from the measurement does.

The tolerance is deliberately generous (25% + a 5 ms absolute floor) so the
gate catches algorithmic regressions — an accidental O(N) rate recompute,
a lost incremental update — rather than runner noise.
"""

import json
import sys

ALLOWED_REGRESSION = 0.25
ABS_FLOOR_MS = 5.0


def n2000_walls(doc: dict) -> dict:
    fair = doc.get("fair_fast", doc)  # baseline file stores the section bare
    ns = fair["n"]
    if 2000 not in ns:
        sys.exit("no N=2000 point in fair_fast section")
    i = ns.index(2000)
    return {label: walls[i] for label, walls in fair["wall_ms"].items()}


def main() -> int:
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        measured = n2000_walls(json.load(f))
    with open(sys.argv[2]) as f:
        baseline = n2000_walls(json.load(f))

    failures = []
    for label, base_ms in sorted(baseline.items()):
        got = measured.get(label)
        if got is None:
            failures.append(f"{label}: present in baseline but not measured")
            continue
        limit = base_ms * (1.0 + ALLOWED_REGRESSION) + ABS_FLOOR_MS
        verdict = "FAIL" if got > limit else "ok"
        print(
            f"{verdict:4} {label}: {got:.1f} ms "
            f"(baseline {base_ms:.1f} ms, limit {limit:.1f} ms)"
        )
        if got > limit:
            failures.append(
                f"{label}: {got:.1f} ms exceeds {limit:.1f} ms "
                f"({ALLOWED_REGRESSION:.0%} over baseline {base_ms:.1f} ms)"
            )
    if failures:
        print("\nN=2000 fair-fast wall-clock regression:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("N=2000 fair-fast wall-clock within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
